(** The VOLUME model (Definitions 2.8/2.9): adaptive probe algorithms
    that pay per node seen instead of per hop of radius. *)

type tuple = {
  id : int;
  degree : int;
  inputs : int array;  (** per-port input labels; -1 = unlabeled *)
}

type decision =
  | Probe of int * int  (** probe port p of the j-th discovered node *)
  | Output of int array (** outputs for the queried node's ports *)

type t = {
  name : string;
  budget : n:int -> int;                      (** declared T(n) *)
  decide : n:int -> tuple array -> decision;  (** pure in the tuples *)
}

exception Budget_exceeded of { algo : string; node : int; budget : int }
exception Bad_probe of string

val tuple_of : Graph.t -> ids:int array -> int -> tuple

(** Answer one query: run the probe loop for node [v]; returns the
    outputs and the probes spent.
    @raise Budget_exceeded / Bad_probe accordingly. *)
val query :
  ?n_declared:int -> t -> Graph.t -> ids:int array -> int -> int array * int

type outcome = {
  labeling : int array array;
  violations : Lcl.Verify.violation list;
  max_probes : int;
  total_probes : int;
}

(** Run the algorithm for every node under the given identifiers and
    verify the assembled labeling. Queries are answered on the
    deterministic parallel engine ([domains] as in [Local.Runner.run],
    default $LCL_DOMAINS); results are identical for any worker
    count. *)
val run_with_ids :
  ?n_declared:int -> ?domains:int -> problem:Lcl.Problem.t -> t -> Graph.t ->
  ids:int array -> outcome

(** Same with fresh random identifiers from a cubic range. *)
val run :
  ?seed:int -> ?n_declared:int -> ?domains:int -> problem:Lcl.Problem.t ->
  t -> Graph.t -> outcome
