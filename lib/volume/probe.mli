(** The VOLUME model (Definitions 2.8/2.9): adaptive probe algorithms
    that pay per node seen instead of per hop of radius. *)

type tuple = {
  id : int;
  degree : int;
  inputs : int array;  (** per-port input labels; -1 = unlabeled *)
}

type decision =
  | Probe of int * int  (** probe port p of the j-th discovered node *)
  | Output of int array (** outputs for the queried node's ports *)

type t = {
  name : string;
  budget : n:int -> int;                      (** declared T(n) *)
  decide : n:int -> tuple array -> decision;  (** pure in the tuples *)
}

exception Budget_exceeded of { algo : string; node : int; budget : int }
exception Bad_probe of string

val tuple_of : Graph.t -> ids:int array -> int -> tuple

(** Answer one query: run the probe loop for node [v]; returns the
    outputs and the probes spent.
    @raise Budget_exceeded / Bad_probe accordingly. *)
val query :
  ?n_declared:int -> t -> Graph.t -> ids:int array -> int -> int array * int

type outcome = {
  labeling : int array array;
  violations : Lcl.Verify.violation list;
  max_probes : int;
  total_probes : int;
}

(** Run the algorithm for every node under the given identifiers and
    verify the assembled labeling. Queries are answered on the
    deterministic parallel engine ([domains] as in [Local.Runner.run],
    default $LCL_DOMAINS), optionally sharded across [workers] forked
    processes ([workers] as in [Local.Runner.run], default
    $LCL_WORKERS); results are identical for any (workers, domains)
    combination. *)
val run_with_ids :
  ?n_declared:int -> ?domains:int -> ?workers:int ->
  problem:Lcl.Problem.t -> t -> Graph.t -> ids:int array -> outcome

(** Same with fresh random identifiers from a cubic range. *)
val run :
  ?seed:int -> ?n_declared:int -> ?domains:int -> ?workers:int ->
  problem:Lcl.Problem.t -> t -> Graph.t -> outcome

(** {1 Resilient probing under a fault plan}

    A probe is lost when it crosses a blocked edge (severed or with a
    crashed endpoint) or when its 1-based ordinal is listed for the
    querying node in the plan; a lost probe starves the query, so
    VOLUME [Starved] nodes carry no output row. Budget overruns and
    malformed probes become [Errored] (F201/F202), algorithm
    exceptions F103 — nothing raises. *)

(** One query under compiled faults: status, output row ([[||]] unless
    [Ok]) and probes spent, lost ones included. *)
val query_resilient :
  ?n_declared:int -> Fault.Inject.compiled -> t -> Graph.t ->
  ids:int array -> int -> Fault.status * int array * int

type fault_report = {
  applied : Fault.Plan.t;
  statuses : Fault.status array;  (** per host node *)
  ok_nodes : int;
  crashed_nodes : int;
  starved_nodes : int;
  errored_nodes : int;
  retries_used : int;             (** whole-run re-attempts consumed *)
}

type resilient_outcome = {
  partial : int array array;   (** [[||]] rows unless the status is Ok *)
  healthy_violations : Lcl.Verify.violation list;
      (** violations on the healthy subgraph, in host coordinates *)
  r_max_probes : int;
  r_total_probes : int;
  report : fault_report;
}

(** Run every query under [plan] and verify the surviving outputs on
    the healthy subgraph. Retrying is run-level — VOLUME queries have
    no per-node randomness, so a retry redraws the identifier
    assignment for the whole run when some node [Errored].
    Deterministic in (graph, plan, seed) at any worker count. [Error]
    (F301) iff the plan does not fit the graph. *)
val run_resilient :
  ?seed:int -> ?n_declared:int -> ?domains:int -> ?workers:int ->
  ?plan:Fault.Plan.t -> ?retries:int -> problem:Lcl.Problem.t -> t ->
  Graph.t -> (resilient_outcome, Fault.Error.t) result
