(* The VOLUME model (Definitions 2.8 and 2.9). An algorithm answers a
   query about one node by *adaptively probing*: it starts from the
   queried node's local tuple (identifier, degree, per-port inputs) and
   repeatedly asks for the node behind port p of the j-th node it has
   already seen; after at most T(n) probes it must output the labels of
   the queried node's half-edges. Unlike the LOCAL model it pays per
   node seen, not per hop of radius — the distinction Theorem 1.3
   exploits.

   The tuple contents follow Definition 2.8: (id, deg, in) where [in]
   assigns an input label to each port. Orientation marks and similar
   structural annotations enter through the input labels, as in the
   paper's LCL formalism (inputs live on half-edges). *)

type tuple = {
  id : int;
  degree : int;
  inputs : int array; (* per-port input labels; -1 = unlabeled *)
}

type decision =
  | Probe of int * int  (* probe port p of the j-th discovered node *)
  | Output of int array (* output labels for the queried node's ports *)

type t = {
  name : string;
  budget : n:int -> int; (* declared probe complexity T(n) *)
  decide : n:int -> tuple array -> decision;
}

exception Budget_exceeded of { algo : string; node : int; budget : int }
exception Bad_probe of string

let tuple_of g ~ids v =
  {
    id = ids.(v);
    degree = Graph.degree g v;
    inputs = Array.init (Graph.degree g v) (fun p -> Graph.input g v p);
  }

(** Answer the query for node [v]: run the adaptive probe loop.
    Returns the outputs and the number of probes spent. *)
let query ?(n_declared = -1) (a : t) g ~ids v =
  let n = if n_declared >= 0 then n_declared else Graph.n g in
  let budget = a.budget ~n in
  let discovered = ref [ (v, tuple_of g ~ids v) ] in
  let count = ref 0 in
  let rec loop () =
    let tuples = Array.of_list (List.rev_map snd !discovered) in
    match a.decide ~n tuples with
    | Output out ->
      if Array.length out <> Graph.degree g v then
        raise (Bad_probe (a.name ^ ": wrong output arity"));
      (out, !count)
    | Probe (j, p) ->
      incr count;
      if !count > budget then
        raise (Budget_exceeded { algo = a.name; node = v; budget });
      let nodes = Array.of_list (List.rev_map fst !discovered) in
      if j < 0 || j >= Array.length nodes then
        raise (Bad_probe (a.name ^ ": probe of unknown node"));
      let u = nodes.(j) in
      if p < 0 || p >= Graph.degree g u then
        raise (Bad_probe (a.name ^ ": probe of nonexistent port"));
      let w = Graph.neighbor g u p in
      discovered := (w, tuple_of g ~ids w) :: !discovered;
      loop ()
  in
  loop ()

type outcome = {
  labeling : int array array;
  violations : Lcl.Verify.violation list;
  max_probes : int;
  total_probes : int;
}

(** Run the algorithm for every node under the given identifier
    assignment and verify the assembled labeling against [problem].
    Per-node queries are independent (the probe loop only reads the
    host graph), so they run on the deterministic parallel engine:
    [domains] as in [Local.Runner.run] (default $LCL_DOMAINS), with
    outputs and probe counts identical for every worker count. *)
let run_with_ids ?n_declared ?domains ~problem (a : t) g ~ids =
  let n = Graph.n g in
  let answers =
    Util.Parallel.init ?domains n (fun v -> query ?n_declared a g ~ids v)
  in
  let labeling = Array.map fst answers in
  let max_probes = Array.fold_left (fun m (_, p) -> max m p) 0 answers in
  let total_probes = Array.fold_left (fun t (_, p) -> t + p) 0 answers in
  {
    labeling;
    violations = Lcl.Verify.violations problem g labeling;
    max_probes;
    total_probes;
  }

(** Same with fresh random identifiers from a cubic range. *)
let run ?(seed = 0xBEEF) ?n_declared ?domains ~problem (a : t) g =
  let rng = Util.Prng.create ~seed in
  let ids = Graph.Ids.random rng (Graph.n g) in
  run_with_ids ?n_declared ?domains ~problem a g ~ids
