(* The VOLUME model (Definitions 2.8 and 2.9). An algorithm answers a
   query about one node by *adaptively probing*: it starts from the
   queried node's local tuple (identifier, degree, per-port inputs) and
   repeatedly asks for the node behind port p of the j-th node it has
   already seen; after at most T(n) probes it must output the labels of
   the queried node's half-edges. Unlike the LOCAL model it pays per
   node seen, not per hop of radius — the distinction Theorem 1.3
   exploits.

   The tuple contents follow Definition 2.8: (id, deg, in) where [in]
   assigns an input label to each port. Orientation marks and similar
   structural annotations enter through the input labels, as in the
   paper's LCL formalism (inputs live on half-edges). *)

type tuple = {
  id : int;
  degree : int;
  inputs : int array; (* per-port input labels; -1 = unlabeled *)
}

type decision =
  | Probe of int * int  (* probe port p of the j-th discovered node *)
  | Output of int array (* output labels for the queried node's ports *)

type t = {
  name : string;
  budget : n:int -> int; (* declared probe complexity T(n) *)
  decide : n:int -> tuple array -> decision;
}

exception Budget_exceeded of { algo : string; node : int; budget : int }
exception Bad_probe of string

let tuple_of g ~ids v =
  {
    id = ids.(v);
    degree = Graph.degree g v;
    inputs = Array.init (Graph.degree g v) (fun p -> Graph.input g v p);
  }

(** Answer the query for node [v]: run the adaptive probe loop.
    Returns the outputs and the number of probes spent. *)
let query ?(n_declared = -1) (a : t) g ~ids v =
  let n = if n_declared >= 0 then n_declared else Graph.n g in
  let budget = a.budget ~n in
  let discovered = ref [ (v, tuple_of g ~ids v) ] in
  let count = ref 0 in
  let rec loop () =
    let tuples = Array.of_list (List.rev_map snd !discovered) in
    match a.decide ~n tuples with
    | Output out ->
      if Array.length out <> Graph.degree g v then
        raise (Bad_probe (a.name ^ ": wrong output arity"));
      (out, !count)
    | Probe (j, p) ->
      incr count;
      if !count > budget then
        raise (Budget_exceeded { algo = a.name; node = v; budget });
      let nodes = Array.of_list (List.rev_map fst !discovered) in
      if j < 0 || j >= Array.length nodes then
        raise (Bad_probe (a.name ^ ": probe of unknown node"));
      let u = nodes.(j) in
      if p < 0 || p >= Graph.degree g u then
        raise (Bad_probe (a.name ^ ": probe of nonexistent port"));
      let w = Graph.neighbor g u p in
      discovered := (w, tuple_of g ~ids w) :: !discovered;
      loop ()
  in
  loop ()

type outcome = {
  labeling : int array array;
  violations : Lcl.Verify.violation list;
  max_probes : int;
  total_probes : int;
}

(* Observability handles: per-run aggregates recorded after the
   parallel section (the per-query histogram loop only runs when the
   switch is on, so the disabled path stays a no-op). *)
let m_queries = Obs.Metrics.counter "volume.queries"
let m_probes = Obs.Metrics.counter "volume.probes"
let m_per_query = Obs.Metrics.histogram "volume.probes_per_query"
let m_run_retries = Obs.Metrics.counter "volume.run_retries"
let m_ok = Obs.Metrics.counter "volume.nodes_ok"
let m_crashed = Obs.Metrics.counter "volume.nodes_crashed"
let m_starved = Obs.Metrics.counter "volume.nodes_starved"
let m_errored = Obs.Metrics.counter "volume.nodes_errored"

(** Run the algorithm for every node under the given identifier
    assignment and verify the assembled labeling against [problem].
    Per-node queries are independent (the probe loop only reads the
    host graph), so they run on the deterministic parallel engine:
    [domains] as in [Local.Runner.run] (default $LCL_DOMAINS), with
    outputs and probe counts identical for every worker count. *)
let resolve_workers workers =
  match workers with
  | Some w -> max 1 w
  | None -> Util.Cluster.default_workers ()

(* Exceptions escaping a worker shard, made marshalable: the budget
   and probe-validity exceptions callers pattern-match on are rebuilt
   typed in the parent; anything else degrades to its printed form
   (the [Parallel.Worker_error] wrapper is unwrapped first — its
   chunk coordinates are child-relative). *)
type wire_exn =
  | W_budget of { algo : string; node : int; budget : int }
  | W_bad_probe of string
  | W_invalid of string
  | W_failure of string
  | W_other of string

let wire_exn_of e =
  let e =
    match e with
    | Util.Parallel.Worker_error { error; _ } -> error
    | e -> e
  in
  match e with
  | Budget_exceeded { algo; node; budget } -> W_budget { algo; node; budget }
  | Bad_probe m -> W_bad_probe m
  | Invalid_argument m -> W_invalid m
  | Failure m -> W_failure m
  | e -> W_other (Printexc.to_string e)

let reraise_wire = function
  | W_budget { algo; node; budget } ->
    raise (Budget_exceeded { algo; node; budget })
  | W_bad_probe m -> raise (Bad_probe m)
  | W_invalid m -> raise (Invalid_argument m)
  | W_failure m -> raise (Failure m)
  | W_other m -> failwith ("cluster worker failed: " ^ m)

(* Cluster dispatch for the probe engines: queries are pure per node
   (they only read the host graph and the id assignment, both of
   which every forked worker holds copy-on-write), so sharding the
   node range over worker processes and concatenating in rank order
   reproduces the single-process answer array bit for bit. Workers
   ship their trace collections back alongside the rows; a worker
   that dies — or a process in which forking is unavailable — is
   recovered in-process (see [Util.Cluster]). *)
let cluster_init ~workers ~domains n f =
  let shard lo hi =
    match
      (if Obs.enabled () then Obs.reset ());
      let rows =
        Util.Parallel.init ?domains (hi - lo) (fun i -> f (lo + i))
      in
      let obs =
        if Obs.enabled () then
          ( Obs.Span.collect (),
            List.filter
              (fun (_, v) -> not (Obs.Metrics.is_zero v))
              (Obs.Metrics.snapshot ()) )
        else ([], [])
      in
      (rows, obs)
    with
    | p -> Ok p
    | exception e -> Error (wire_exn_of e)
  in
  let recover lo hi =
    Ok (Util.Parallel.init ?domains (hi - lo) (fun i -> f (lo + i)), ([], []))
  in
  let shards = Util.Cluster.map_ranges ~workers ~recover ~n shard in
  Array.iter (function Error w -> reraise_wire w | Ok _ -> ()) shards;
  let shards =
    Array.map (function Ok p -> p | Error _ -> assert false) shards
  in
  Array.iter
    (fun (_, (events, metrics)) ->
      Obs.Span.absorb events;
      Obs.Metrics.absorb metrics)
    shards;
  Array.concat (Array.to_list (Array.map fst shards))

let parallel_init ?domains ?workers n f =
  let workers_used = min (resolve_workers workers) (max 1 n) in
  if workers_used <= 1 then Util.Parallel.init ?domains n f
  else cluster_init ~workers:workers_used ~domains n f

let run_with_ids ?n_declared ?domains ?workers ~problem (a : t) g ~ids =
  Obs.Span.with_ "probe.run" @@ fun () ->
  let n = Graph.n g in
  let answers =
    Obs.Span.with_ "probe.simulate" (fun () ->
        parallel_init ?domains ?workers n (fun v ->
            query ?n_declared a g ~ids v))
  in
  let labeling = Array.map fst answers in
  let max_probes = Array.fold_left (fun m (_, p) -> max m p) 0 answers in
  let total_probes = Array.fold_left (fun t (_, p) -> t + p) 0 answers in
  Obs.Metrics.add m_queries n;
  Obs.Metrics.add m_probes total_probes;
  if Obs.enabled () then
    Array.iter (fun (_, p) -> Obs.Metrics.observe m_per_query p) answers;
  let violations =
    Obs.Span.with_ "probe.verify" (fun () ->
        Lcl.Verify.violations problem g labeling)
  in
  { labeling; violations; max_probes; total_probes }

(** Same with fresh random identifiers from a cubic range. *)
let run ?(seed = 0xBEEF) ?n_declared ?domains ?workers ~problem (a : t) g =
  let rng = Util.Prng.create ~seed in
  let ids = Graph.Ids.random rng (Graph.n g) in
  run_with_ids ?n_declared ?domains ?workers ~problem a g ~ids

(* -- resilient probing --------------------------------------------------- *)

(* VOLUME under faults. A probe is *lost* when it crosses a blocked
   edge (severed, or a crashed endpoint — the compiled table is
   symmetric) or when the plan lists its 1-based ordinal for the
   querying node. A lost probe starves the query: the adaptive loop has
   no way to proceed without the answer, which is exactly the
   crash-stop/message-loss semantics — so VOLUME [Starved] nodes carry
   no output row, unlike LOCAL ones (where a degraded view still
   yields an output). Budget overruns and malformed probes become
   [Errored] statuses (F201/F202), algorithm exceptions F103; nothing
   raises across the parallel engine. *)

(** Answer one query under compiled faults: the status, the output row
    ([[||]] unless [Ok]) and the probes spent (lost ones included). *)
let query_resilient ?(n_declared = -1) compiled (a : t) g ~ids v =
  if Fault.Inject.is_crashed compiled v then (Fault.Crashed, [||], 0)
  else
    let n = if n_declared >= 0 then n_declared else Graph.n g in
    let budget = a.budget ~n in
    let discovered = ref [ (v, tuple_of g ~ids v) ] in
    let count = ref 0 in
    let rec loop () =
      let tuples = Array.of_list (List.rev_map snd !discovered) in
      match a.decide ~n tuples with
      | Output out ->
        if Array.length out <> Graph.degree g v then
          (Fault.Errored
             (Fault.Error.f ~node:v ~code:"F202"
                "%s: wrong output arity (%d at degree-%d node)" a.name
                (Array.length out) (Graph.degree g v)),
           [||], !count)
        else (Fault.Ok, out, !count)
      | Probe (j, p) ->
        incr count;
        if !count > budget then
          (Fault.Errored
             (Fault.Error.f ~node:v ~code:"F201"
                "%s: probe budget %d exceeded" a.name budget),
           [||], !count)
        else begin
          let nodes = Array.of_list (List.rev_map fst !discovered) in
          if j < 0 || j >= Array.length nodes then
            (Fault.Errored
               (Fault.Error.f ~node:v ~code:"F202"
                  "%s: probe of unknown node %d" a.name j),
             [||], !count)
          else
            let u = nodes.(j) in
            if p < 0 || p >= Graph.degree g u then
              (Fault.Errored
                 (Fault.Error.f ~node:v ~code:"F202"
                    "%s: probe of nonexistent port %d of node %d" a.name p u),
               [||], !count)
            else if
              Fault.Inject.is_blocked compiled u p
              || Fault.Inject.probe_fails compiled ~node:v ~ordinal:!count
            then (Fault.Starved, [||], !count)
            else begin
              let w = Graph.neighbor g u p in
              discovered := (w, tuple_of g ~ids w) :: !discovered;
              loop ()
            end
        end
    in
    (try loop () with
     | Fault.Error.E err -> (Fault.Errored err, [||], !count)
     | e ->
       (Fault.Errored
          (Fault.Error.f ~node:v ~code:"F103" "%s raised: %s" a.name
             (Printexc.to_string e)),
        [||], !count))

type fault_report = {
  applied : Fault.Plan.t;
  statuses : Fault.status array;  (* per host node *)
  ok_nodes : int;
  crashed_nodes : int;
  starved_nodes : int;
  errored_nodes : int;
  retries_used : int;             (* whole-run re-attempts consumed *)
}

type resilient_outcome = {
  partial : int array array;      (* [||] rows unless the status is Ok *)
  healthy_violations : Lcl.Verify.violation list; (* host coordinates *)
  r_max_probes : int;
  r_total_probes : int;
  report : fault_report;
}

(** Run every query under fault [plan] and verify the surviving outputs
    on the healthy subgraph. Retrying is run-level (VOLUME queries have
    no per-node randomness — only the identifier assignment is random):
    when some node [Errored] and attempts remain, the whole run repeats
    with a fresh identifier seed. Deterministic in (graph, plan, seed)
    at any worker count. [Error] (F301) iff the plan does not fit the
    graph. *)
let run_resilient ?(seed = 0xBEEF) ?n_declared ?domains ?workers
    ?(plan = Fault.Plan.empty) ?(retries = 0) ~problem (a : t) g =
  Obs.Span.with_ "probe.run_resilient" @@ fun () ->
  match Fault.Inject.compile plan g with
  | Error e -> Error e
  | Ok compiled ->
    let n = Graph.n g in
    let attempt k =
      let rng = Util.Prng.create ~seed:(seed + (k * 7919)) in
      let ids = Fault.Inject.apply_ids compiled (Graph.Ids.random rng n) in
      parallel_init ?domains ?workers n (fun v ->
          query_resilient ?n_declared compiled a g ~ids v)
    in
    let rec go k =
      let answers = attempt k in
      let errored =
        Array.exists (fun (s, _, _) -> match s with Fault.Errored _ -> true | _ -> false)
          answers
      in
      if errored && k < retries then go (k + 1) else (answers, k)
    in
    let answers, attempts = go 0 in
    let statuses = Array.map (fun (s, _, _) -> s) answers in
    let partial = Array.map (fun (_, out, _) -> out) answers in
    let ok = ref 0 and cr = ref 0 and st = ref 0 and er = ref 0 in
    Array.iter
      (function
        | Fault.Ok -> incr ok
        | Fault.Crashed -> incr cr
        | Fault.Starved -> incr st
        | Fault.Errored _ -> incr er)
      statuses;
    let has_output v = statuses.(v) = Fault.Ok in
    let healthy_violations =
      Fault.Inject.verify_healthy compiled g ~problem ~labeling:partial
        ~has_output
    in
    let total_probes =
      Array.fold_left (fun t (_, _, p) -> t + p) 0 answers
    in
    Obs.Metrics.add m_queries n;
    Obs.Metrics.add m_probes total_probes;
    Obs.Metrics.add m_run_retries attempts;
    Obs.Metrics.add m_ok !ok;
    Obs.Metrics.add m_crashed !cr;
    Obs.Metrics.add m_starved !st;
    Obs.Metrics.add m_errored !er;
    if Obs.enabled () then
      Array.iter (fun (_, _, p) -> Obs.Metrics.observe m_per_query p) answers;
    Ok
      {
        partial;
        healthy_violations;
        r_max_probes =
          Array.fold_left (fun m (_, _, p) -> max m p) 0 answers;
        r_total_probes =
          Array.fold_left (fun t (_, _, p) -> t + p) 0 answers;
        report =
          {
            applied = plan;
            statuses;
            ok_nodes = !ok;
            crashed_nodes = !cr;
            starved_nodes = !st;
            errored_nodes = !er;
            retries_used = attempts;
          };
      }
