(* The serve daemon: single-threaded select loop, one dispatch cycle
   per select wake-up. All buffered requests of a cycle go through
   [Engine.answer_batch], so identical queries arriving together are
   computed once; repeats across daemon restarts come from the
   persistent cache.

   The daemon itself never spawns a domain (computation runs either
   sequentially or in forked cluster workers), so it stays
   fork-capable for its whole lifetime — the OCaml 5 runtime refuses
   [fork] after any in-process domain (see [Util.Cluster]). *)

type stats = {
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable connections : int;
}

type conn = {
  fd : Unix.file_descr;
  dec : Util.Framing.decoder;
  mutable alive : bool;
}

let rec accept_pending listen conns stats =
  match Unix.accept ~cloexec:true listen with
  | fd, _ ->
    stats.connections <- stats.connections + 1;
    conns := { fd; dec = Util.Framing.decoder (); alive = true } :: !conns;
    accept_pending listen conns stats
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    accept_pending listen conns stats

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Drain one readable connection into its decoder and return the
   requests that completed. A client that vanishes (EOF, reset) or
   sends garbage (torn frame, bad marshal) just loses its
   connection — the daemon carries on. *)
let read_requests scratch c =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 ->
    close_conn c;
    []
  | k -> (
    match
      Util.Framing.feed c.dec
        (Bytes.sub_string scratch 0 k)
        ~pos:0 ~len:k;
      let rec drain acc =
        match Util.Framing.next c.dec with
        | Some payload -> drain (Protocol.request_of_payload payload :: acc)
        | None -> List.rev acc
      in
      drain []
    with
    | reqs -> reqs
    | exception (Util.Framing.Corrupt _ | Failure _) ->
      close_conn c;
      [])
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    close_conn c;
    []

let respond c r =
  if c.alive then
    try Protocol.write_response c.fd r
    with
    | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      close_conn c

let stats_text stats ~cache =
  Printf.sprintf
    "{\"serve\":\"stats\",\"served\":%d,\"cache_hits\":%d,\
     \"cache_misses\":%d,\"connections\":%d,\"cache_entries\":%d}\n"
    stats.served stats.hits stats.misses stats.connections
    (Util.Diskcache.length cache)

let serve ~socket_path ~cache_path ?workers ?(should_stop = fun () -> false)
    ?(poll_interval = 0.25) ?(on_ready = fun () -> ()) () =
  let stats = { served = 0; hits = 0; misses = 0; connections = 0 } in
  (if Sys.file_exists socket_path then
     try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cache = Util.Diskcache.open_ cache_path in
  let stop_requested = ref false in
  let cleanup_conns = ref [] in
  let finally () =
    List.iter close_conn !cleanup_conns;
    (try Unix.close listen with Unix.Unix_error _ -> ());
    (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
    Util.Diskcache.flush cache;
    Util.Diskcache.close cache
  in
  Fun.protect ~finally (fun () ->
      Unix.bind listen (Unix.ADDR_UNIX socket_path);
      Unix.listen listen 64;
      Unix.set_nonblock listen;
      on_ready ();
      let scratch = Bytes.create 65536 in
      let conns = cleanup_conns in
      while not (!stop_requested || should_stop ()) do
        conns := List.filter (fun c -> c.alive) !conns;
        let fds = listen :: List.map (fun c -> c.fd) !conns in
        let readable =
          match Unix.select fds [] [] poll_interval with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        if List.memq listen readable then accept_pending listen conns stats;
        (* one dispatch cycle: everything buffered right now, batched *)
        let pending =
          List.concat_map
            (fun c ->
              if c.alive && List.memq c.fd readable then
                List.map (fun r -> (c, r)) (read_requests scratch c)
              else [])
            !conns
        in
        if pending <> [] then begin
          let daemon_level = function
            | Protocol.Stats | Protocol.Shutdown -> true
            | _ -> false
          in
          let engine_reqs =
            List.filter_map
              (fun (_, r) -> if daemon_level r then None else Some r)
              pending
          in
          let answered = ref (Engine.answer_batch ?workers ~cache engine_reqs) in
          List.iter
            (fun (c, req) ->
              stats.served <- stats.served + 1;
              match req with
              | Protocol.Stats -> respond c (Ok (stats_text stats ~cache))
              | Protocol.Shutdown ->
                stop_requested := true;
                respond c (Ok "shutting down\n")
              | _ ->
                (match !answered with
                | (r, src) :: rest ->
                  answered := rest;
                  (match src with
                  | Engine.Hit -> stats.hits <- stats.hits + 1
                  | Engine.Miss -> stats.misses <- stats.misses + 1
                  | Engine.Uncacheable -> ());
                  respond c r
                | [] ->
                  (* impossible: one batch answer per engine request *)
                  respond c (Error "internal: batch underflow")))
            pending;
          (* keep the on-disk cache durable after every cycle that
             could have extended it *)
          Util.Diskcache.flush cache
        end
      done);
  stats

(* -- client ------------------------------------------------------------- *)

let with_connection ~socket_path f =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      f fd)

let request ~socket_path req : Protocol.response =
  match
    with_connection ~socket_path (fun fd ->
        Protocol.write_request fd req;
        Protocol.read_response fd)
  with
  | Some r -> r
  | None -> Error "daemon closed the connection without answering"
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
             (Unix.error_message e))
  | exception Util.Framing.Corrupt m -> Error ("corrupt response: " ^ m)

let request_batch ~socket_path reqs : Protocol.response list =
  match
    with_connection ~socket_path (fun fd ->
        List.iter (Protocol.write_request fd) reqs;
        List.map
          (fun _ ->
            match Protocol.read_response fd with
            | Some r -> r
            | None -> Error "daemon closed the connection without answering")
          reqs)
  with
  | rs -> rs
  | exception Unix.Unix_error (e, _, _) ->
    let msg =
      Error (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
               (Unix.error_message e))
    in
    List.map (fun _ -> msg) reqs
  | exception Util.Framing.Corrupt m ->
    List.map (fun _ -> Error ("corrupt response: " ^ m)) reqs
