(* The serve daemon: single-threaded select loop, one dispatch cycle
   per select wake-up. All buffered requests of a cycle go through
   [Engine.answer_batch], so identical queries arriving together are
   computed once; repeats across daemon restarts come from the
   persistent cache.

   The daemon itself never spawns a domain (computation runs either
   sequentially or in forked cluster workers), so it stays
   fork-capable for its whole lifetime — the OCaml 5 runtime refuses
   [fork] after any in-process domain (see [Util.Cluster]).

   Robustness invariant: nothing a client or a worker does may tear
   down the select loop. A misbehaving client loses its connection; a
   dead or stalled worker degrades its answer; a corrupt cache file is
   quarantined and rebuilt; overflow is shed with a typed
   [Overloaded]. See daemon.mli and DESIGN.md ("Service
   robustness"). *)

type stats = {
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable connections : int;
  mutable shed : int;
  mutable degraded : int;
  mutable deadlines : int;
  mutable failed : int;
  mutable quarantined : int;
}

type config = {
  max_pending : int;
  retry_after_ms : int;
  default_budget_ms : int option;
  cluster_timeout_ms : int option;
  write_timeout_s : float;
  chaos : Fault.Service.t;
}

let default_config =
  {
    max_pending = 64;
    retry_after_ms = 50;
    default_budget_ms = None;
    cluster_timeout_ms = None;
    write_timeout_s = 5.;
    chaos = Fault.Service.empty;
  }

let m_shed = Obs.Metrics.counter "serve.shed"
let m_conn_dropped = Obs.Metrics.counter "serve.conn.dropped"
let m_quarantined = Obs.Metrics.counter "serve.cache.rebuilt"

type conn = {
  fd : Unix.file_descr;
  dec : Util.Framing.decoder;
  mutable alive : bool;
}

let rec accept_pending ~write_timeout_s listen conns stats =
  match Unix.accept ~cloexec:true listen with
  | fd, _ ->
    stats.connections <- stats.connections + 1;
    (* a peer that stops reading blocks its own answer, not the loop *)
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO write_timeout_s
     with Unix.Unix_error _ -> ());
    conns := { fd; dec = Util.Framing.decoder (); alive = true } :: !conns;
    accept_pending ~write_timeout_s listen conns stats
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED | Unix.ECONNRESET), _, _)
    ->
    accept_pending ~write_timeout_s listen conns stats

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

(* Drain one readable connection into its decoder and return the
   envelopes that completed. A client that vanishes (EOF — possibly
   mid-frame, the decoder simply dies with the connection), resets, or
   sends garbage (torn frame, bad marshal) just loses its connection —
   the daemon carries on. *)
let read_requests scratch c =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 ->
    close_conn c;
    []
  | k -> (
    match
      Util.Framing.feed c.dec
        (Bytes.sub_string scratch 0 k)
        ~pos:0 ~len:k;
      let rec drain acc =
        match Util.Framing.next c.dec with
        | Some payload -> drain (Protocol.envelope_of_payload payload :: acc)
        | None -> List.rev acc
      in
      drain []
    with
    | reqs -> reqs
    | exception (Util.Framing.Corrupt _ | Failure _) ->
      Obs.Metrics.incr m_conn_dropped;
      close_conn c;
      [])
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    []
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    Obs.Metrics.incr m_conn_dropped;
    close_conn c;
    []

let respond c r =
  if c.alive then
    try Protocol.write_response c.fd r
    with
    | Unix.Unix_error
        (( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.EAGAIN
         | Unix.EWOULDBLOCK ),
          _, _) ->
      (* gone, or not reading within the send timeout: either way the
         answer is undeliverable — drop the peer, keep the loop *)
      Obs.Metrics.incr m_conn_dropped;
      close_conn c

let stats_text stats ~cache =
  Printf.sprintf
    "{\"serve\":\"stats\",\"served\":%d,\"cache_hits\":%d,\
     \"cache_misses\":%d,\"connections\":%d,\"shed\":%d,\"degraded\":%d,\
     \"deadlines\":%d,\"failed\":%d,\"quarantined\":%d,\"cache_entries\":%d}\n"
    stats.served stats.hits stats.misses stats.connections stats.shed
    stats.degraded stats.deadlines stats.failed stats.quarantined
    (Util.Diskcache.length cache)

let health_text stats ~cache ~workers ~queue ~uptime_s =
  Printf.sprintf
    "{\"serve\":\"health\",\"uptime_s\":%d,\"queue\":%d,\"workers\":%d,\
     \"can_fork\":%b,\"cache_entries\":%d,\"served\":%d,\"shed\":%d,\
     \"degraded\":%d,\"quarantined\":%d}\n"
    uptime_s queue workers
    (Util.Cluster.can_fork ())
    (Util.Diskcache.length cache)
    stats.served stats.shed stats.degraded stats.quarantined

(* -- daemon-side chaos -------------------------------------------------- *)

(* Worker kill/stall travel by the same env hooks the cluster chaos CI
   uses; the empty string parses to "no rank", so clearing is just
   setting "". The disk-full hook raises where a real ENOSPC would. *)
let apply_chaos_event ~garble = function
  | Fault.Service.Kill_worker r ->
    Unix.putenv Util.Cluster.kill_env_var (string_of_int r)
  | Fault.Service.Stall_worker r ->
    Unix.putenv Util.Cluster.stall_env_var (string_of_int r)
  | Fault.Service.Cache_corrupt -> garble ()
  | Fault.Service.Disk_full ->
    Util.Diskcache.set_write_hook
      (Some
         (fun _key -> raise (Unix.Unix_error (Unix.ENOSPC, "write", "chaos"))))
  | Fault.Service.Torn_frame | Fault.Service.Drop_connection ->
    (* client-side events: not ours to apply *)
    ()

let clear_chaos () =
  Unix.putenv Util.Cluster.kill_env_var "";
  Unix.putenv Util.Cluster.stall_env_var "";
  Util.Diskcache.set_write_hook None

let serve ~socket_path ~cache_path ?workers ?(config = default_config)
    ?(should_stop = fun () -> false) ?(poll_interval = 0.25)
    ?(on_ready = fun () -> ()) () =
  let stats =
    {
      served = 0;
      hits = 0;
      misses = 0;
      connections = 0;
      shed = 0;
      degraded = 0;
      deadlines = 0;
      failed = 0;
      quarantined = 0;
    }
  in
  let started = Unix.gettimeofday () in
  (* a client gone mid-response must cost its connection, not the
     process: EPIPE has to surface as an exception, not a signal *)
  (if Sys.unix then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
  (if Sys.file_exists socket_path then
     try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cache =
    let c, quarantined_to = Util.Diskcache.open_resilient cache_path in
    if quarantined_to <> None then begin
      stats.quarantined <- stats.quarantined + 1;
      Obs.Metrics.incr m_quarantined
    end;
    ref c
  in
  (* corrupt mid-run: move the bad file aside, rebuild fresh — warm
     answers recompute to the same bytes, so nothing but time is lost *)
  let rebuild_cache () =
    (try Util.Diskcache.close !cache with Unix.Unix_error _ -> ());
    (try ignore (Util.Diskcache.quarantine cache_path)
     with Unix.Unix_error _ | Sys_error _ -> ());
    let fresh, _ = Util.Diskcache.open_resilient cache_path in
    cache := fresh;
    stats.quarantined <- stats.quarantined + 1;
    Obs.Metrics.incr m_quarantined
  in
  (* chaos cache corruption: append an impossible frame header, then
     probe with [sync] — exactly the path a real torn write takes *)
  let garble_cache () =
    (try
       let fd =
         Unix.openfile cache_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
       in
       ignore (Unix.write fd (Bytes.make 4 '\xff') 0 4);
       Unix.close fd
     with Unix.Unix_error _ -> ());
    match Util.Diskcache.sync !cache with
    | () -> ()
    | exception (Util.Diskcache.Corrupt _ | Util.Diskcache.Busy _) ->
      rebuild_cache ()
  in
  let saved_cluster_timeout = Util.Cluster.default_timeout () in
  (match config.cluster_timeout_ms with
  | Some ms ->
    Util.Cluster.set_default_timeout (Some (float_of_int ms /. 1000.))
  | None -> ());
  let stop_requested = ref false in
  let cleanup_conns = ref [] in
  let finally () =
    List.iter close_conn !cleanup_conns;
    (try Unix.close listen with Unix.Unix_error _ -> ());
    (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
    Util.Cluster.set_default_timeout saved_cluster_timeout;
    (if not (Fault.Service.is_empty config.chaos) then clear_chaos ());
    (try Util.Diskcache.flush !cache with Unix.Unix_error _ -> ());
    Util.Diskcache.close !cache
  in
  (* ordinal of the next engine-level request, for chaos targeting *)
  let ordinal = ref 0 in
  (* evaluate a cycle's admitted engine requests; a corrupt cache
     surfaces here (from the locked re-scan) and is rebuilt, then the
     batch retried once against the fresh cache *)
  let eval_batch items =
    try Engine.answer_batch ?workers ~cache:!cache items
    with Util.Diskcache.Corrupt _ ->
      rebuild_cache ();
      Engine.answer_batch ?workers ~cache:!cache items
  in
  let eval_engine items =
    if Fault.Service.is_empty config.chaos then begin
      ordinal := !ordinal + List.length items;
      eval_batch items
    end
    else
      (* per-item dispatch so each ordinal's events cover exactly one
         request; batch dedup is lost but the cache still collapses
         repeats, and chaos runs are not benchmarks *)
      List.map
        (fun item ->
          let o = !ordinal in
          incr ordinal;
          let events =
            List.filter
              (fun e -> not (Fault.Service.client_side e))
              (Fault.Service.at config.chaos o)
          in
          List.iter (apply_chaos_event ~garble:garble_cache) events;
          Fun.protect
            ~finally:(fun () -> if events <> [] then clear_chaos ())
            (fun () ->
              match eval_batch [ item ] with
              | [ r ] -> r
              | _ -> (Protocol.Failed { code = "F403"; message = "internal" },
                      Engine.Uncacheable)))
        items
  in
  Fun.protect ~finally (fun () ->
      Unix.bind listen (Unix.ADDR_UNIX socket_path);
      Unix.listen listen 64;
      Unix.set_nonblock listen;
      on_ready ();
      let scratch = Bytes.create 65536 in
      let conns = cleanup_conns in
      while not (!stop_requested || should_stop ()) do
        conns := List.filter (fun c -> c.alive) !conns;
        let fds = listen :: List.map (fun c -> c.fd) !conns in
        let readable =
          match Unix.select fds [] [] poll_interval with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> []
        in
        if List.memq listen readable then
          accept_pending ~write_timeout_s:config.write_timeout_s listen conns
            stats;
        (* one dispatch cycle: everything buffered right now, batched *)
        let pending =
          List.concat_map
            (fun c ->
              if c.alive && List.memq c.fd readable then
                List.map (fun e -> (c, e)) (read_requests scratch c)
              else [])
            !conns
        in
        if pending <> [] then begin
          (* admission control: daemon-level requests always pass;
             engine-level beyond [max_pending] shed with a hint *)
          let admitted = ref 0 in
          let items =
            List.map
              (fun ((_, e) as p) ->
                match e.Protocol.req with
                | Protocol.Stats | Protocol.Health | Protocol.Shutdown ->
                  (p, `Daemon)
                | _ ->
                  if !admitted >= config.max_pending then (p, `Shed)
                  else begin
                    incr admitted;
                    (p, `Engine)
                  end)
              pending
          in
          let queue_depth = !admitted in
          let engine_items =
            List.filter_map
              (fun (((_, e) : conn * Protocol.envelope), k) ->
                if k = `Engine then
                  Some
                    ( e.Protocol.req,
                      (match e.Protocol.budget_ms with
                      | Some _ as b -> b
                      | None -> config.default_budget_ms) )
                else None)
              items
          in
          let answered = ref (eval_engine engine_items) in
          List.iter
            (fun (((c, e) : conn * Protocol.envelope), kind) ->
              stats.served <- stats.served + 1;
              match kind with
              | `Daemon -> (
                match e.Protocol.req with
                | Protocol.Stats ->
                  respond c (Protocol.Answer (stats_text stats ~cache:!cache))
                | Protocol.Health ->
                  respond c
                    (Protocol.Answer
                       (health_text stats ~cache:!cache
                          ~workers:
                            (match workers with
                            | Some w -> w
                            | None -> Util.Cluster.default_workers ())
                          ~queue:queue_depth
                          ~uptime_s:
                            (int_of_float (Unix.gettimeofday () -. started))))
                | Protocol.Shutdown ->
                  stop_requested := true;
                  respond c (Protocol.Answer "shutting down\n")
                | _ -> assert false)
              | `Shed ->
                stats.shed <- stats.shed + 1;
                Obs.Metrics.incr m_shed;
                respond c
                  (Protocol.Overloaded
                     { retry_after_ms = config.retry_after_ms })
              | `Engine -> (
                match !answered with
                | (r, src) :: rest ->
                  answered := rest;
                  (match src with
                  | Engine.Hit -> stats.hits <- stats.hits + 1
                  | Engine.Miss -> stats.misses <- stats.misses + 1
                  | Engine.Uncacheable -> ());
                  (match r with
                  | Protocol.Degraded _ ->
                    stats.degraded <- stats.degraded + 1
                  | Protocol.Deadline_exceeded _ ->
                    stats.deadlines <- stats.deadlines + 1
                  | Protocol.Failed _ -> stats.failed <- stats.failed + 1
                  | Protocol.Answer _ | Protocol.Overloaded _ -> ());
                  respond c r
                | [] ->
                  (* impossible: one batch answer per engine request *)
                  respond c
                    (Protocol.Failed
                       { code = "F403"; message = "internal: batch underflow" })))
            items;
          (* keep the on-disk cache durable after every cycle that
             could have extended it *)
          try Util.Diskcache.flush !cache with Unix.Unix_error _ -> ()
        end
      done);
  stats

(* -- client ------------------------------------------------------------- *)

let with_connection ?recv_timeout_s ~socket_path f =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket_path);
      (match recv_timeout_s with
      | Some s -> (
        try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
        with Unix.Unix_error _ -> ())
      | None -> ());
      f fd)

let transport_failed message = Protocol.Failed { code = "F401"; message }

(* One attempt: a typed response, or a transport error message. *)
let attempt_request ?budget_ms ?recv_timeout_s ~socket_path req =
  match
    with_connection ?recv_timeout_s ~socket_path (fun fd ->
        Protocol.write_request ?budget_ms fd req;
        Protocol.read_response fd)
  with
  | Some r -> Ok r
  | None -> Error "daemon closed the connection without answering"
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Error "timed out waiting for the daemon's answer"
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
         (Unix.error_message e))
  | exception Util.Framing.Corrupt m -> Error ("corrupt response: " ^ m)

let no_retry = Util.Backoff.create ~max_retries:0 ~seed:0 ()

let request ?budget_ms ?recv_timeout_s ?(retry = no_retry) ~socket_path req :
    Protocol.response =
  let rec go attempt =
    match attempt_request ?budget_ms ?recv_timeout_s ~socket_path req with
    | Ok (Protocol.Overloaded { retry_after_ms } as r) -> (
      (* the daemon shed us: honor its hint, bounded by our budget *)
      match Util.Backoff.delay_ms retry ~attempt with
      | Some ms ->
        Util.Backoff.sleep_ms (max ms retry_after_ms);
        go (attempt + 1)
      | None -> r)
    | Ok r -> r
    | Error message -> (
      match Util.Backoff.delay_ms retry ~attempt with
      | Some ms ->
        Util.Backoff.sleep_ms ms;
        go (attempt + 1)
      | None -> transport_failed message)
  in
  go 0

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd b !sent (len - !sent) with
    | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
    | k -> sent := !sent + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let request_batch ?budget_ms ?recv_timeout_s ~socket_path reqs :
    Protocol.response list =
  match
    with_connection ?recv_timeout_s ~socket_path (fun fd ->
        (* one write: the whole batch lands in one dispatch cycle *)
        write_all fd
          (String.concat ""
             (List.map (Protocol.encode_request ?budget_ms) reqs));
        List.map
          (fun _ ->
            match Protocol.read_response fd with
            | Some r -> r
            | None ->
              transport_failed "daemon closed the connection without answering")
          reqs)
  with
  | rs -> rs
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    List.map
      (fun _ -> transport_failed "timed out waiting for the daemon's answer")
      reqs
  | exception Unix.Unix_error (e, _, _) ->
    let msg =
      transport_failed
        (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
           (Unix.error_message e))
    in
    List.map (fun _ -> msg) reqs
  | exception Util.Framing.Corrupt m ->
    List.map (fun _ -> transport_failed ("corrupt response: " ^ m)) reqs
