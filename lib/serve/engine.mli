(** Request evaluation for the daemon: pure request-in, text-out.

    Every computed answer is deterministic in the request (seeds are
    explicit, reports carry no wall times), which is what makes the
    persistent cache sound: a warm answer is byte-identical to the
    cold one.

    Observability (when enabled): each computed request runs under a
    ["serve.compute"] span; the counters [serve.requests],
    [serve.cache.hits], [serve.cache.misses] and [serve.computed]
    count lookups and invocations — a repeated cacheable request
    increments [serve.cache.hits] and leaves [serve.computed]
    untouched. *)

(** Evaluate one request, bypassing any cache. [workers] shards
    simulation workloads across forked processes as in
    [Local.Runner.run]. [Classify] is answered statically by
    [Classify.Landscape] — verdict, bounds and certificate as
    canonical JSON, never invoking the simulator. [Stats] and
    [Shutdown] are daemon-level requests and answer [Error] here. *)
val answer : ?workers:int -> Protocol.request -> Protocol.response

(** Evaluate through a persistent cache: fingerprinted requests probe
    [cache] first and persist their (successful) answer on a miss.
    Error answers are never cached. *)
val answer_cached :
  ?workers:int -> cache:Util.Diskcache.t -> Protocol.request ->
  Protocol.response

(** How a batched answer was obtained: from the persistent cache (or
    an earlier duplicate in the same cycle), computed on a cache miss,
    or computed because the request has no fingerprint. *)
type source = Hit | Miss | Uncacheable

(** Evaluate a dispatch cycle's batch: distinct fingerprints are
    computed (or fetched) once and shared across the batch, in first-
    occurrence order; requests without a fingerprint are evaluated
    individually. The result list is positionally aligned with the
    input. *)
val answer_batch :
  ?workers:int -> cache:Util.Diskcache.t -> Protocol.request list ->
  (Protocol.response * source) list
