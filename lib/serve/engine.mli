(** Request evaluation for the daemon: request in, typed outcome out.

    Every computed answer is deterministic in the request (seeds are
    explicit, reports carry no wall times), which is what makes the
    persistent cache sound: a warm answer is byte-identical to the
    cold one. That includes degraded answers — a cluster worker that
    dies or stalls mid-computation has its range recomputed in-process
    ([Util.Cluster]), so the text of a [Degraded] response is the same
    bytes the healthy run produces; only the flag differs, and the
    text is cached like any other answer (a warm replay is [Answer]).

    Failure taxonomy (the F4xx rows of DESIGN.md's error table):
    [Failed "F400"] — the request itself is bad (unknown algorithm,
    unparsable problem, out-of-range parameter); [Failed "F403"] — the
    computation raised. Cache trouble never fails a request: a [Busy]
    cache (lock held elsewhere past the bounded wait) is treated as a
    miss and the answer is computed without being stored.

    Observability (when enabled): each computed request runs under a
    ["serve.compute"] span; [serve.requests], [serve.cache.hits],
    [serve.cache.misses], [serve.computed] count lookups and
    invocations; [serve.degraded] counts answers that took a recovery
    path; [serve.deadline.expired] counts budget expiries;
    [serve.cache.bypassed] counts cache probes skipped over a busy
    lock. *)

(** Evaluate one request, bypassing any cache. [workers] shards
    simulation workloads across forked processes as in
    [Local.Runner.run]. [Classify] is answered statically by
    [Classify.Landscape] — verdict, bounds and certificate as
    canonical JSON, never invoking the simulator. [Stats], [Health]
    and [Shutdown] are daemon-level requests and answer [Failed]
    here. *)
val answer : ?workers:int -> Protocol.request -> Protocol.response

(** Evaluate through a persistent cache: fingerprinted requests probe
    [cache] first and persist their answer text on a miss. [Failed]
    answers are never cached. *)
val answer_cached :
  ?workers:int -> cache:Util.Diskcache.t -> Protocol.request ->
  Protocol.response

(** How a batched answer was obtained: from the persistent cache (or
    an earlier duplicate in the same cycle), computed on a cache miss,
    or computed/refused without a cache key ([Uncacheable] also covers
    deadline expiries). *)
type source = Hit | Miss | Uncacheable

(** Evaluate a dispatch cycle's batch of [(request, budget_ms)] pairs:
    distinct fingerprints are computed (or fetched) once and shared
    across the batch, in first-occurrence order; requests without a
    fingerprint are evaluated individually. The result list is
    positionally aligned with the input.

    Budgets are enforced per dispatch cycle: each request's deadline
    is its budget measured from the start of the batch. A request
    whose deadline has already passed when its turn comes is answered
    [Deadline_exceeded] without being evaluated; while a budgeted
    request computes, the cluster drain timeout is clamped to the
    remaining budget so a stalled worker cannot overrun it (the range
    is reaped and recovered, degrading the answer rather than missing
    the deadline). *)
val answer_batch :
  ?workers:int -> cache:Util.Diskcache.t ->
  (Protocol.request * int option) list ->
  (Protocol.response * source) list
