(** The named built-in problems shared by the CLI and the daemon:
    every spelling accepted on the command line ([lcl_tool classify
    3-coloring]) is also accepted over the wire. *)

val all : (string * Lcl.Problem.t) list

val find : string -> Lcl.Problem.t option

(** Zoo name or problem source text to a problem.
    [Error message] on an unknown name that does not parse. *)
val load : string -> (Lcl.Problem.t, string) result
