(* Wire protocol: marshaled request/response values in Framing frames.
   See protocol.mli for the contract. *)

type request =
  | Ping
  | Zoo
  | Classify of { problem : string }
  | Gap of { problem : string; iterations : int; max_labels : int }
  | Simulate of { algo : string; n : int; seed : int }
  | Faultsim of {
      algo : string;
      n : int;
      seed : int;
      fault_seed : int;
      crash : float;
      sever : float;
      retries : int;
    }
  | Stats
  | Shutdown

type response = (string, string) result

(* Canonical problem text: parse (or look up in the zoo) and
   pretty-print, so formatting differences between two spellings of
   the same problem collapse to one key. Unparsable problems get no
   fingerprint — the error answer must be recomputed, never cached. *)
let canonical_problem spec =
  match Zoo_table.find spec with
  | Some p -> Some (Lcl.Parse.to_string p)
  | None -> (
    match Lcl.Parse.of_string spec with
    | p -> Some (Lcl.Parse.to_string p)
    | exception Lcl.Parse.Parse_error _ -> None)

let digest s = Digest.to_hex (Digest.string s)

let fingerprint = function
  | Ping | Zoo | Stats | Shutdown -> None
  | Classify { problem } ->
    (* v2: the answer format changed from the degree-2 verdict pair to
       the landscape-classifier JSON; the version tag keeps caches
       written by older daemons from answering in the old format. *)
    Option.map
      (fun c -> "classify:v2:" ^ digest c)
      (canonical_problem problem)
  | Gap { problem; iterations; max_labels } ->
    Option.map
      (fun c ->
        Printf.sprintf "gap:%d:%d:%s" iterations max_labels (digest c))
      (canonical_problem problem)
  | Simulate { algo; n; seed } ->
    Some (Printf.sprintf "simulate:%s:%d:%d" algo n seed)
  | Faultsim { algo; n; seed; fault_seed; crash; sever; retries } ->
    Some
      (Printf.sprintf "faultsim:%s:%d:%d:%d:%h:%h:%d" algo n seed fault_seed
         crash sever retries)

let write_request fd (r : request) =
  Util.Framing.write_frame fd (Marshal.to_string r [])

let write_response fd (r : response) =
  Util.Framing.write_frame fd (Marshal.to_string r [])

let request_of_payload payload : request = Marshal.from_string payload 0

let read_request fd : request option =
  Option.map request_of_payload (Util.Framing.read_frame fd)

let read_response fd : response option =
  Option.map
    (fun payload : response -> Marshal.from_string payload 0)
    (Util.Framing.read_frame fd)
