(* Wire protocol: marshaled envelope/response values in Framing
   frames. See protocol.mli for the contract. *)

type request =
  | Ping
  | Zoo
  | Classify of { problem : string }
  | Gap of { problem : string; iterations : int; max_labels : int }
  | Simulate of { algo : string; n : int; seed : int }
  | Faultsim of {
      algo : string;
      n : int;
      seed : int;
      fault_seed : int;
      crash : float;
      sever : float;
      retries : int;
    }
  | Stats
  | Health
  | Shutdown

type envelope = { req : request; budget_ms : int option }

type response =
  | Answer of string
  | Degraded of { text : string; reason : string }
  | Failed of { code : string; message : string }
  | Deadline_exceeded of { budget_ms : int }
  | Overloaded of { retry_after_ms : int }

let response_text = function
  | Answer text | Degraded { text; _ } -> Some text
  | Failed _ | Deadline_exceeded _ | Overloaded _ -> None

let response_label = function
  | Answer _ -> "answer"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"
  | Deadline_exceeded _ -> "deadline"
  | Overloaded _ -> "overloaded"

let response_to_string = function
  | Answer text -> text
  | Degraded { text; reason } ->
    Printf.sprintf "[degraded: %s]\n%s" reason text
  | Failed { code; message } -> Printf.sprintf "error %s: %s" code message
  | Deadline_exceeded { budget_ms } ->
    Printf.sprintf "deadline exceeded (budget %d ms)" budget_ms
  | Overloaded { retry_after_ms } ->
    Printf.sprintf "overloaded (retry after %d ms)" retry_after_ms

(* Canonical problem text: parse (or look up in the zoo) and
   pretty-print, so formatting differences between two spellings of
   the same problem collapse to one key. Unparsable problems get no
   fingerprint — the error answer must be recomputed, never cached. *)
let canonical_problem spec =
  match Zoo_table.find spec with
  | Some p -> Some (Lcl.Parse.to_string p)
  | None -> (
    match Lcl.Parse.of_string spec with
    | p -> Some (Lcl.Parse.to_string p)
    | exception Lcl.Parse.Parse_error _ -> None)

let digest s = Digest.to_hex (Digest.string s)

let fingerprint = function
  | Ping | Zoo | Stats | Health | Shutdown -> None
  | Classify { problem } ->
    (* v2: the answer format changed from the degree-2 verdict pair to
       the landscape-classifier JSON; the version tag keeps caches
       written by older daemons from answering in the old format. *)
    Option.map
      (fun c -> "classify:v2:" ^ digest c)
      (canonical_problem problem)
  | Gap { problem; iterations; max_labels } ->
    Option.map
      (fun c ->
        Printf.sprintf "gap:%d:%d:%s" iterations max_labels (digest c))
      (canonical_problem problem)
  | Simulate { algo; n; seed } ->
    Some (Printf.sprintf "simulate:%s:%d:%d" algo n seed)
  | Faultsim { algo; n; seed; fault_seed; crash; sever; retries } ->
    Some
      (Printf.sprintf "faultsim:%s:%d:%d:%d:%h:%h:%d" algo n seed fault_seed
         crash sever retries)

let encode_request ?budget_ms req =
  Util.Framing.encode (Marshal.to_string { req; budget_ms } [])

let write_request ?budget_ms fd req =
  Util.Framing.write_frame fd (Marshal.to_string { req; budget_ms } [])

let write_response fd (r : response) =
  Util.Framing.write_frame fd (Marshal.to_string r [])

let envelope_of_payload payload : envelope = Marshal.from_string payload 0

let read_envelope fd : envelope option =
  Option.map envelope_of_payload (Util.Framing.read_frame fd)

let read_response fd : response option =
  Option.map
    (fun payload : response -> Marshal.from_string payload 0)
    (Util.Framing.read_frame fd)
