(* Built-in problems by name, previously a private table of the CLI;
   the daemon shares it so zoo names mean the same thing over the
   wire as on the command line. *)

let all =
  [
    ("trivial", Lcl.Zoo.trivial ~delta:3);
    ("free-choice", Lcl.Zoo.free_choice ~delta:3);
    ("edge-orientation", Lcl.Zoo.edge_orientation ~delta:3);
    ("edge-orientation-d2", Lcl.Zoo.edge_orientation ~delta:2);
    ("echo-input", Lcl.Zoo.echo_input ~delta:2);
    ("3-coloring", Lcl.Zoo.coloring ~k:3 ~delta:2);
    ("2-coloring", Lcl.Zoo.coloring ~k:2 ~delta:2);
    ("4-coloring-d3", Lcl.Zoo.coloring ~k:4 ~delta:3);
    ("3-edge-coloring", Lcl.Zoo.edge_coloring ~k:3 ~delta:2);
    ("mis", Lcl.Zoo.mis ~delta:2);
    ("mis-d3", Lcl.Zoo.mis ~delta:3);
    ("maximal-matching", Lcl.Zoo.maximal_matching ~delta:2);
    ("sinkless-orientation", Lcl.Zoo.sinkless_orientation ~delta:3);
    ("consistent-orientation", Lcl.Zoo.consistent_orientation);
    ("period-3", Lcl.Zoo.period_pattern ~k:3);
    ("forbidden-color", Lcl.Zoo.forbidden_color_coloring);
    ("weak-2-coloring", Lcl.Zoo.weak_2_coloring ~delta:3 ());
    ("weak-2-coloring-d2", Lcl.Zoo.weak_2_coloring ~delta:2 ());
  ]

let find name = List.assoc_opt name all

let load spec =
  match find spec with
  | Some p -> Ok p
  | None -> (
    match Lcl.Parse.of_string spec with
    | p -> Ok p
    | exception Lcl.Parse.Parse_error { message; line } ->
      Error
        (Printf.sprintf "parse error: %s"
           (Lcl.Parse.error_to_string ~message ~line)))
