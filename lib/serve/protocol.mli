(** Wire protocol of the [lcl_tool serve] daemon.

    Requests and responses are marshaled OCaml values, one per
    length-prefixed [Util.Framing] frame, over a Unix-domain stream
    socket. Problems travel as text (a zoo name or the [Lcl.Parse]
    source), never as a file path: the daemon must not depend on the
    client's filesystem.

    Each request travels in an {!envelope} carrying its optional
    deadline budget; every response is one of the typed {!response}
    outcomes — there is no untyped failure, and a request whose budget
    expires is answered [Deadline_exceeded], never left hanging.

    Cacheable requests have a {!fingerprint}: a canonical key under
    which the daemon persists the answer text in its on-disk
    classification cache. The canonical form of a problem is its
    parsed pretty-printing, so two textual spellings of the same
    problem share one cache entry. *)

type request =
  | Ping
  | Zoo  (** list the built-in problems *)
  | Classify of { problem : string }
      (** degree-2 cycle/path classification (Section 4 machinery) *)
  | Gap of { problem : string; iterations : int; max_labels : int }
      (** Theorem 3.10 tree gap pipeline *)
  | Simulate of { algo : string; n : int; seed : int }
      (** a named LOCAL algorithm on an oriented cycle *)
  | Faultsim of {
      algo : string;
      n : int;
      seed : int;
      fault_seed : int;
      crash : float;
      sever : float;
      retries : int;
    }  (** resilient run under a generated fault plan *)
  | Stats  (** daemon counters; answered by the daemon itself *)
  | Health
      (** liveness probe: queue depth, worker status, cache stats,
          uptime — answered by the daemon itself, never queued *)
  | Shutdown  (** flush the cache and exit; answered before exiting *)

(** What travels in a request frame: the request plus its deadline
    budget in milliseconds ([None] = no deadline — the daemon may
    still impose its own). *)
type envelope = { req : request; budget_ms : int option }

(** Every way a request can terminate. [Answer] and [Degraded] both
    carry the full answer text — a degraded answer is byte-identical
    to the healthy one (recovered shards are recomputed in-process,
    see [Util.Cluster]), the flag only records that the service took a
    recovery path to produce it. [Failed] carries an F-coded service
    error (F4xx, see DESIGN.md). *)
type response =
  | Answer of string
  | Degraded of { text : string; reason : string }
  | Failed of { code : string; message : string }
  | Deadline_exceeded of { budget_ms : int }
  | Overloaded of { retry_after_ms : int }

(** The answer text when there is one ([Answer] or [Degraded]). *)
val response_text : response -> string option

(** Stable outcome class for reports and counters: ["answer"],
    ["degraded"], ["failed"], ["deadline"], or ["overloaded"]. *)
val response_label : response -> string

(** One-line human rendering (used by the CLI client). *)
val response_to_string : response -> string

(** Cache key for requests whose answer is deterministic in the
    request alone; [None] for the others ([Ping], [Zoo], [Stats],
    [Health], [Shutdown]). Malformed problems fingerprint to [None] so
    parse errors are never cached. *)
val fingerprint : request -> string option

(** Frame I/O over a socket. [read_*] return [None] on clean EOF.
    @raise Util.Framing.Corrupt on a torn or oversized frame,
    [Failure] on an unmarshalable payload. *)

val write_request : ?budget_ms:int -> Unix.file_descr -> request -> unit

val read_envelope : Unix.file_descr -> envelope option

val write_response : Unix.file_descr -> response -> unit

val read_response : Unix.file_descr -> response option

(** Decode one marshaled envelope payload (a [Framing] frame body), as
    fed by the daemon's incremental decoder. *)
val envelope_of_payload : string -> envelope

(** The marshaled bytes of a request frame, for clients that need to
    place several requests in one [write] (the batch client, the
    torn-frame chaos leg). *)
val encode_request : ?budget_ms:int -> request -> string
