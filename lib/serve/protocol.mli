(** Wire protocol of the [lcl_tool serve] daemon.

    Requests and responses are marshaled OCaml values, one per
    length-prefixed [Util.Framing] frame, over a Unix-domain stream
    socket. Problems travel as text (a zoo name or the [Lcl.Parse]
    source), never as a file path: the daemon must not depend on the
    client's filesystem.

    Cacheable requests have a {!fingerprint}: a canonical key under
    which the daemon persists the response in its on-disk
    classification cache. The canonical form of a problem is its
    parsed pretty-printing, so two textual spellings of the same
    problem share one cache entry. *)

type request =
  | Ping
  | Zoo  (** list the built-in problems *)
  | Classify of { problem : string }
      (** degree-2 cycle/path classification (Section 4 machinery) *)
  | Gap of { problem : string; iterations : int; max_labels : int }
      (** Theorem 3.10 tree gap pipeline *)
  | Simulate of { algo : string; n : int; seed : int }
      (** a named LOCAL algorithm on an oriented cycle *)
  | Faultsim of {
      algo : string;
      n : int;
      seed : int;
      fault_seed : int;
      crash : float;
      sever : float;
      retries : int;
    }  (** resilient run under a generated fault plan *)
  | Stats  (** daemon counters; answered by the daemon itself *)
  | Shutdown  (** flush the cache and exit; answered before exiting *)

(** Response text, or an error message. Responses to cacheable
    requests are byte-identical whether computed cold or replayed from
    the cache (the stored value IS the returned value). *)
type response = (string, string) result

(** Cache key for requests whose answer is deterministic in the
    request alone; [None] for the others ([Ping], [Zoo], [Stats],
    [Shutdown]). Malformed problems fingerprint to [None] so parse
    errors are never cached. *)
val fingerprint : request -> string option

(** Frame I/O over a socket. [read_*] return [None] on clean EOF.
    @raise Util.Framing.Corrupt on a torn or oversized frame,
    [Failure] on an unmarshalable payload. *)

val write_request : Unix.file_descr -> request -> unit

val read_request : Unix.file_descr -> request option

val write_response : Unix.file_descr -> response -> unit

val read_response : Unix.file_descr -> response option

(** Decode one marshaled request payload (a [Framing] frame body), as
    fed by the daemon's incremental decoder. *)
val request_of_payload : string -> request
