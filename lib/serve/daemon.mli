(** The [lcl_tool serve] daemon: a select-loop over a Unix-domain
    socket, batching one dispatch cycle's requests through
    [Engine.answer_batch] and the persistent classification cache.

    One process, no in-parent domains by default: simulation requests
    shard across forked worker processes ([workers]), which keeps the
    daemon itself fork-capable for its whole lifetime (see
    [Util.Cluster.can_fork]).

    Protocol per connection: any number of request frames, answered in
    order; requests already buffered when a cycle dispatches are
    answered from one batch (distinct fingerprints computed once). *)

type stats = {
  mutable served : int;      (** requests answered *)
  mutable hits : int;        (** answered from the persistent cache *)
  mutable misses : int;      (** fingerprinted but computed *)
  mutable connections : int; (** connections accepted *)
}

(** [serve ~socket_path ~cache_path ()] binds [socket_path] (removing
    a stale socket file first), opens (or creates) the cache at
    [cache_path] and serves until a [Shutdown] request arrives or
    [should_stop ()] turns true (polled at least every [poll_interval]
    seconds, default 0.25). The cache is flushed and closed and the
    socket unlinked on every exit path. Returns the final counters.

    [on_ready] fires once listening (used by tests and by the CLI to
    print the socket path). [workers] is passed to every computation.

    @raise Unix.Unix_error when binding or listening fails. *)
val serve :
  socket_path:string ->
  cache_path:string ->
  ?workers:int ->
  ?should_stop:(unit -> bool) ->
  ?poll_interval:float ->
  ?on_ready:(unit -> unit) ->
  unit ->
  stats

(** {1 Client side} *)

(** [request ~socket_path req] connects, sends [req], and reads the
    answer. [Error] covers connection failures and daemon-reported
    errors alike. *)
val request : socket_path:string -> Protocol.request -> Protocol.response

(** Send every request on one connection before reading any answer —
    the way to land a whole batch in a single dispatch cycle. Answers
    are positionally aligned with the requests. *)
val request_batch :
  socket_path:string -> Protocol.request list -> Protocol.response list
