(** The [lcl_tool serve] daemon: a select-loop over a Unix-domain
    socket, batching one dispatch cycle's requests through
    [Engine.answer_batch] and the persistent classification cache.

    One process, no in-parent domains by default: simulation requests
    shard across forked worker processes ([workers]), which keeps the
    daemon itself fork-capable for its whole lifetime (see
    [Util.Cluster.can_fork]).

    Protocol per connection: any number of request frames, answered in
    order; requests already buffered when a cycle dispatches are
    answered from one batch (distinct fingerprints computed once).

    Robustness (see DESIGN.md, "Service robustness"):
    - every request terminates with a typed [Protocol.response] — a
      budget in the envelope (or [default_budget_ms]) turns into
      [Deadline_exceeded] instead of a hang, with the cluster drain
      timeout clamped to the remaining budget while it computes;
    - admission control: at most [max_pending] engine-level requests
      are admitted per dispatch cycle, the overflow is shed with
      [Overloaded] carrying a retry-after hint (daemon-level [Stats],
      [Health], [Shutdown] are never shed);
    - a worker death or stall mid-request degrades to an in-process
      recompute and a [Degraded] answer with identical text;
    - a corrupt cache file is quarantined (renamed aside) and the
      cache rebuilt, mid-run or at startup; a busy cache lock is
      bypassed for the cycle;
    - client misbehaviour (mid-frame disconnect, reset, garbage,
      never-reading peers) costs that client its connection, never the
      select loop. *)

type stats = {
  mutable served : int;      (** requests answered *)
  mutable hits : int;        (** answered from the persistent cache *)
  mutable misses : int;      (** fingerprinted but computed *)
  mutable connections : int; (** connections accepted *)
  mutable shed : int;        (** answered [Overloaded] unevaluated *)
  mutable degraded : int;    (** answered [Degraded] *)
  mutable deadlines : int;   (** answered [Deadline_exceeded] *)
  mutable failed : int;      (** answered [Failed] *)
  mutable quarantined : int; (** cache rebuilds after corruption *)
}

type config = {
  max_pending : int;
      (** engine-level admissions per dispatch cycle (default 64) *)
  retry_after_ms : int;
      (** hint carried by [Overloaded] (default 50) *)
  default_budget_ms : int option;
      (** budget for envelopes that carry none (default [None]) *)
  cluster_timeout_ms : int option;
      (** installed via [Util.Cluster.set_default_timeout] at startup,
          so every computation inherits a worker drain bound even
          without a request budget (default [None] = keep the
          [LCL_CLUSTER_TIMEOUT_MS]-seeded global) *)
  write_timeout_s : float;
      (** [SO_SNDTIMEO] on client connections: a peer that stops
          reading stalls its own answer, not the daemon (default 5) *)
  chaos : Fault.Service.t;
      (** daemon-side chaos events, applied by engine-request ordinal
          (client-side events are ignored here); [Service.empty]
          disables injection *)
}

val default_config : config

(** [serve ~socket_path ~cache_path ()] binds [socket_path] (removing
    a stale socket file first), opens the cache at [cache_path] —
    quarantining and rebuilding it when corrupt — and serves until a
    [Shutdown] request arrives or [should_stop ()] turns true (polled
    at least every [poll_interval] seconds, default 0.25). The cache
    is flushed and closed and the socket unlinked on every exit path.
    Returns the final counters.

    [on_ready] fires once listening (used by tests and by the CLI to
    print the socket path). [workers] is passed to every computation.

    @raise Unix.Unix_error when binding or listening fails. *)
val serve :
  socket_path:string ->
  cache_path:string ->
  ?workers:int ->
  ?config:config ->
  ?should_stop:(unit -> bool) ->
  ?poll_interval:float ->
  ?on_ready:(unit -> unit) ->
  unit ->
  stats

(** {1 Client side}

    Client-side failures are typed like daemon-side ones: transport
    trouble (cannot connect, daemon vanished mid-answer, receive
    timeout) comes back as [Failed] with code F401 — [request] never
    raises and never hangs when [recv_timeout_s] is set. *)

(** [request ~socket_path req] connects, sends [req] (with its
    [budget_ms], if any), and reads the answer.

    [retry] is the reconnect/retry budget: transport failures are
    retried per the backoff policy, and an [Overloaded] answer is
    retried after at least its own retry-after hint. The default
    policy makes no retries. When the budget is exhausted the last
    outcome is returned: the final [Overloaded], or [Failed] F401
    describing the transport error. *)
val request :
  ?budget_ms:int ->
  ?recv_timeout_s:float ->
  ?retry:Util.Backoff.t ->
  socket_path:string ->
  Protocol.request ->
  Protocol.response

(** Send every request in one [write] on one connection before
    reading any answer — the way to land a whole batch in a single
    dispatch cycle (and the admission-control test's way to overflow
    one). Answers are positionally aligned; transport failures fill
    the remainder with [Failed] F401. No retries. *)
val request_batch :
  ?budget_ms:int ->
  ?recv_timeout_s:float ->
  socket_path:string ->
  Protocol.request list ->
  Protocol.response list
