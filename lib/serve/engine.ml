(* Request evaluation. Answers must be deterministic in the request —
   no wall times, explicit seeds — so that the persistent cache can
   replay them byte-identically. See engine.mli. *)

let m_requests = Obs.Metrics.counter "serve.requests"
let m_hits = Obs.Metrics.counter "serve.cache.hits"
let m_misses = Obs.Metrics.counter "serve.cache.misses"
let m_computed = Obs.Metrics.counter "serve.computed"

let resolve_local_algo name =
  match name with
  | "cv-coloring" ->
    Some (Local.Cole_vishkin.three_coloring, Lcl.Zoo.coloring ~k:3 ~delta:2)
  | "mis" -> Some (Local.Mis.algorithm, Lcl.Zoo.mis ~delta:2)
  | "matching" ->
    Some (Local.Matching.algorithm, Lcl.Zoo.maximal_matching ~delta:2)
  | "luby" -> Some (Local.Luby.algorithm, Lcl.Zoo.mis ~delta:2)
  | _ -> None

let zoo_text () =
  String.concat ""
    (List.map
       (fun (name, p) ->
         Fmt.str "%-24s delta=%d  |out|=%d\n" name (Lcl.Problem.delta p)
           (Lcl.Alphabet.size (Lcl.Problem.sigma_out p)))
       Zoo_table.all)

(* Static landscape classification: verdict, bounds and certificate as
   canonical JSON. Purely static — no replay, no simulator invocations —
   so warm and cold answers alike never touch [Local.Runner]. *)
let classify_text problem =
  match Zoo_table.load problem with
  | Error m -> Error m
  | Ok p -> Ok (Classify.Landscape.to_json (Classify.Landscape.classify p) ^ "\n")

let gap_text ~iterations ~max_labels problem =
  match Zoo_table.load problem with
  | Error m -> Error m
  | Ok p ->
    let r =
      Relim.Pipeline.run ~max_iterations:iterations ~max_labels p
    in
    let b = Buffer.create 256 in
    List.iter
      (fun (e : Relim.Pipeline.trace_entry) ->
        Buffer.add_string b
          (Fmt.str "f^%d: %4d labels, 0-round solvable: %b\n" e.iteration
             e.labels e.zero_round))
      r.Relim.Pipeline.trace;
    Buffer.add_string b
      (Fmt.str "verdict: %a\n" Relim.Pipeline.pp_verdict
         r.Relim.Pipeline.verdict);
    Ok (Buffer.contents b)

let simulate_text ?workers ~algo ~n ~seed () =
  if n < 3 then Error (Printf.sprintf "simulate: n must be >= 3 (got %d)" n)
  else
    match resolve_local_algo algo with
    | None -> Error (Printf.sprintf "unknown algorithm %s" algo)
    | Some (a, problem) ->
      let g = Graph.Builder.oriented_cycle n in
      let o = Local.Runner.run ~seed ?workers ~problem a g in
      Ok
        (Printf.sprintf "%s on oriented C_%d: radius %d, violations %d\n"
           algo n o.Local.Runner.radius_used
           (List.length o.Local.Runner.violations))

let faultsim_text ?workers ~algo ~n ~seed ~fault_seed ~crash ~sever ~retries
    () =
  if n < 3 then Error (Printf.sprintf "faultsim: n must be >= 3 (got %d)" n)
  else
    match resolve_local_algo algo with
    | None -> Error (Printf.sprintf "unknown algorithm %s" algo)
    | Some (a, problem) ->
      let g = Graph.Builder.oriented_cycle n in
      let spec = Fault.Plan.spec ~crash ~sever () in
      let plan = Fault.Plan.generate ~label:"serve" ~seed:fault_seed ~spec g in
      (match
         Local.Runner.run_resilient ~seed ?workers ~plan ~retries ~problem a g
       with
      | Error e -> Error (Fault.Error.to_string e)
      | Ok o ->
        let r = o.Local.Runner.report in
        Ok
          (Fault.Json.to_string
             (Fault.Json.Obj
                [
                  ("faultsim", String "local");
                  ("algo", String algo);
                  ("n", Int n);
                  ("plan", Fault.Plan.to_json r.Local.Runner.applied);
                  ("radius", Int o.Local.Runner.r_radius_used);
                  ("ok", Int r.Local.Runner.ok_nodes);
                  ("crashed", Int r.Local.Runner.crashed_nodes);
                  ("starved", Int r.Local.Runner.starved_nodes);
                  ("errored", Int r.Local.Runner.errored_nodes);
                  ("severed_edges", Int r.Local.Runner.severed_edges);
                  ("retries_used", Int r.Local.Runner.retries_used);
                  ("healthy_violations",
                   Int (List.length o.Local.Runner.healthy_violations));
                ])
           ^ "\n"))

let answer ?workers (req : Protocol.request) : Protocol.response =
  Obs.Metrics.incr m_computed;
  Obs.Span.with_ "serve.compute" (fun () ->
      match req with
      | Ping -> Ok "pong"
      | Zoo -> Ok (zoo_text ())
      | Classify { problem } -> classify_text problem
      | Gap { problem; iterations; max_labels } ->
        gap_text ~iterations ~max_labels problem
      | Simulate { algo; n; seed } -> simulate_text ?workers ~algo ~n ~seed ()
      | Faultsim { algo; n; seed; fault_seed; crash; sever; retries } ->
        faultsim_text ?workers ~algo ~n ~seed ~fault_seed ~crash ~sever
          ~retries ()
      | Stats | Shutdown -> Error "handled by the daemon, not the engine")

type source = Hit | Miss | Uncacheable

let answer_tagged ?workers ~cache req : Protocol.response * source =
  Obs.Metrics.incr m_requests;
  match Protocol.fingerprint req with
  | None -> (answer ?workers req, Uncacheable)
  | Some key -> (
    match Util.Diskcache.find cache key with
    | Some stored ->
      Obs.Metrics.incr m_hits;
      (Ok stored, Hit)
    | None ->
      Obs.Metrics.incr m_misses;
      let r = answer ?workers req in
      (match r with
      | Ok text -> Util.Diskcache.add cache key text
      | Error _ -> ());
      (r, Miss))

let answer_cached ?workers ~cache req : Protocol.response =
  fst (answer_tagged ?workers ~cache req)

let answer_batch ?workers ~cache reqs : (Protocol.response * source) list =
  (* distinct fingerprints answer once per cycle; the by-key table
     also captures cache hits so duplicates skip even the disk probe *)
  let by_key : (string, Protocol.response) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun req ->
      match Protocol.fingerprint req with
      | None ->
        Obs.Metrics.incr m_requests;
        (answer ?workers req, Uncacheable)
      | Some key -> (
        match Hashtbl.find_opt by_key key with
        | Some r ->
          Obs.Metrics.incr m_requests;
          Obs.Metrics.incr m_hits;
          (r, Hit)
        | None ->
          let r, src = answer_tagged ?workers ~cache req in
          Hashtbl.add by_key key r;
          (r, src)))
    reqs
