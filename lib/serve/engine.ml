(* Request evaluation. Answers must be deterministic in the request —
   no wall times, explicit seeds — so that the persistent cache can
   replay them byte-identically. See engine.mli. *)

let m_requests = Obs.Metrics.counter "serve.requests"
let m_hits = Obs.Metrics.counter "serve.cache.hits"
let m_misses = Obs.Metrics.counter "serve.cache.misses"
let m_computed = Obs.Metrics.counter "serve.computed"
let m_degraded = Obs.Metrics.counter "serve.degraded"
let m_deadline = Obs.Metrics.counter "serve.deadline.expired"
let m_cache_bypassed = Obs.Metrics.counter "serve.cache.bypassed"

let resolve_local_algo name =
  match name with
  | "cv-coloring" ->
    Some (Local.Cole_vishkin.three_coloring, Lcl.Zoo.coloring ~k:3 ~delta:2)
  | "mis" -> Some (Local.Mis.algorithm, Lcl.Zoo.mis ~delta:2)
  | "matching" ->
    Some (Local.Matching.algorithm, Lcl.Zoo.maximal_matching ~delta:2)
  | "luby" -> Some (Local.Luby.algorithm, Lcl.Zoo.mis ~delta:2)
  | _ -> None

let zoo_text () =
  String.concat ""
    (List.map
       (fun (name, p) ->
         Fmt.str "%-24s delta=%d  |out|=%d\n" name (Lcl.Problem.delta p)
           (Lcl.Alphabet.size (Lcl.Problem.sigma_out p)))
       Zoo_table.all)

(* Static landscape classification: verdict, bounds and certificate as
   canonical JSON. Purely static — no replay, no simulator invocations —
   so warm and cold answers alike never touch [Local.Runner]. *)
let classify_text problem =
  match Zoo_table.load problem with
  | Error m -> Error m
  | Ok p -> Ok (Classify.Landscape.to_json (Classify.Landscape.classify p) ^ "\n")

let gap_text ~iterations ~max_labels problem =
  match Zoo_table.load problem with
  | Error m -> Error m
  | Ok p ->
    let r =
      Relim.Pipeline.run ~max_iterations:iterations ~max_labels p
    in
    let b = Buffer.create 256 in
    List.iter
      (fun (e : Relim.Pipeline.trace_entry) ->
        Buffer.add_string b
          (Fmt.str "f^%d: %4d labels, 0-round solvable: %b\n" e.iteration
             e.labels e.zero_round))
      r.Relim.Pipeline.trace;
    Buffer.add_string b
      (Fmt.str "verdict: %a\n" Relim.Pipeline.pp_verdict
         r.Relim.Pipeline.verdict);
    Ok (Buffer.contents b)

let simulate_text ?workers ~algo ~n ~seed () =
  if n < 3 then Error (Printf.sprintf "simulate: n must be >= 3 (got %d)" n)
  else
    match resolve_local_algo algo with
    | None -> Error (Printf.sprintf "unknown algorithm %s" algo)
    | Some (a, problem) ->
      let g = Graph.Builder.oriented_cycle n in
      let o = Local.Runner.run ~seed ?workers ~problem a g in
      Ok
        (Printf.sprintf "%s on oriented C_%d: radius %d, violations %d\n"
           algo n o.Local.Runner.radius_used
           (List.length o.Local.Runner.violations))

let faultsim_text ?workers ~algo ~n ~seed ~fault_seed ~crash ~sever ~retries
    () =
  if n < 3 then Error (Printf.sprintf "faultsim: n must be >= 3 (got %d)" n)
  else
    match resolve_local_algo algo with
    | None -> Error (Printf.sprintf "unknown algorithm %s" algo)
    | Some (a, problem) ->
      let g = Graph.Builder.oriented_cycle n in
      let spec = Fault.Plan.spec ~crash ~sever () in
      let plan = Fault.Plan.generate ~label:"serve" ~seed:fault_seed ~spec g in
      (match
         Local.Runner.run_resilient ~seed ?workers ~plan ~retries ~problem a g
       with
      | Error e -> Error (Fault.Error.to_string e)
      | Ok o ->
        let r = o.Local.Runner.report in
        Ok
          (Fault.Json.to_string
             (Fault.Json.Obj
                [
                  ("faultsim", String "local");
                  ("algo", String algo);
                  ("n", Int n);
                  ("plan", Fault.Plan.to_json r.Local.Runner.applied);
                  ("radius", Int o.Local.Runner.r_radius_used);
                  ("ok", Int r.Local.Runner.ok_nodes);
                  ("crashed", Int r.Local.Runner.crashed_nodes);
                  ("starved", Int r.Local.Runner.starved_nodes);
                  ("errored", Int r.Local.Runner.errored_nodes);
                  ("severed_edges", Int r.Local.Runner.severed_edges);
                  ("retries_used", Int r.Local.Runner.retries_used);
                  ("healthy_violations",
                   Int (List.length o.Local.Runner.healthy_violations));
                ])
           ^ "\n"))

(* Text of one request, bypassing any cache. [Error] here means the
   REQUEST was bad (F400); exceptions are internal failures (F403) and
   are mapped by [answer]. *)
let answer_text ?workers (req : Protocol.request) : (string, string) result =
  Obs.Metrics.incr m_computed;
  Obs.Span.with_ "serve.compute" (fun () ->
      match req with
      | Ping -> Ok "pong"
      | Zoo -> Ok (zoo_text ())
      | Classify { problem } -> classify_text problem
      | Gap { problem; iterations; max_labels } ->
        gap_text ~iterations ~max_labels problem
      | Simulate { algo; n; seed } -> simulate_text ?workers ~algo ~n ~seed ()
      | Faultsim { algo; n; seed; fault_seed; crash; sever; retries } ->
        faultsim_text ?workers ~algo ~n ~seed ~fault_seed ~crash ~sever
          ~retries ()
      | Stats | Health | Shutdown ->
        Error "handled by the daemon, not the engine")

(* Degradation detection: [Util.Cluster] recovers a dead or reaped
   worker's range in-process and counts it; a computation that bumped
   the counter took the recovery path. The TEXT is unchanged (the
   bit-identical-recovery guarantee), so degraded answers cache like
   healthy ones — only this run's response carries the flag. *)
let answer ?workers (req : Protocol.request) : Protocol.response =
  let before = Util.Cluster.recoveries () in
  match answer_text ?workers req with
  | Ok text ->
    let recovered = Util.Cluster.recoveries () - before in
    if recovered > 0 then begin
      Obs.Metrics.incr m_degraded;
      Protocol.Degraded
        {
          text;
          reason =
            Printf.sprintf
              "%d worker range%s recovered in-process after death or timeout"
              recovered
              (if recovered = 1 then "" else "s");
        }
    end
    else Protocol.Answer text
  | Error message -> Protocol.Failed { code = "F400"; message }
  | exception e ->
    Protocol.Failed { code = "F403"; message = Printexc.to_string e }

type source = Hit | Miss | Uncacheable

(* Cache trouble must not fail a request: a lock held elsewhere past
   the bounded wait ([Busy]) or a failed write (ENOSPC — real or from
   the chaos write hook) degrades to computing without the cache.
   [Corrupt] propagates — the daemon owns quarantine-and-rebuild. *)
let cache_find cache key =
  try Util.Diskcache.find cache key
  with Util.Diskcache.Busy _ | Unix.Unix_error _ ->
    Obs.Metrics.incr m_cache_bypassed;
    None

let cache_add cache key text =
  try Util.Diskcache.add cache key text
  with Util.Diskcache.Busy _ | Unix.Unix_error _ ->
    Obs.Metrics.incr m_cache_bypassed

let answer_tagged ?workers ~cache req : Protocol.response * source =
  Obs.Metrics.incr m_requests;
  match Protocol.fingerprint req with
  | None -> (answer ?workers req, Uncacheable)
  | Some key -> (
    match cache_find cache key with
    | Some stored ->
      Obs.Metrics.incr m_hits;
      (Protocol.Answer stored, Hit)
    | None ->
      Obs.Metrics.incr m_misses;
      let r = answer ?workers req in
      (match Protocol.response_text r with
      | Some text -> cache_add cache key text
      | None -> ());
      (r, Miss))

let answer_cached ?workers ~cache req : Protocol.response =
  fst (answer_tagged ?workers ~cache req)

(* Clamp the cluster drain timeout to the remaining budget while [f]
   computes, so a stalled worker is reaped (and its range recovered)
   instead of overrunning the deadline. *)
let with_cluster_timeout remaining_s f =
  let saved = Util.Cluster.default_timeout () in
  let clamped =
    match saved with
    | Some t -> Some (Float.min t remaining_s)
    | None -> Some remaining_s
  in
  Util.Cluster.set_default_timeout clamped;
  Fun.protect f ~finally:(fun () -> Util.Cluster.set_default_timeout saved)

let answer_batch ?workers ~cache items : (Protocol.response * source) list =
  let t0 = Unix.gettimeofday () in
  (* distinct fingerprints answer once per cycle; the by-key table
     also captures cache hits so duplicates skip even the disk probe *)
  let by_key : (string, Protocol.response) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (req, budget_ms) ->
      let evaluate () =
        match Protocol.fingerprint req with
        | None ->
          Obs.Metrics.incr m_requests;
          (answer ?workers req, Uncacheable)
        | Some key -> (
          match Hashtbl.find_opt by_key key with
          | Some r ->
            Obs.Metrics.incr m_requests;
            Obs.Metrics.incr m_hits;
            (r, Hit)
          | None ->
            let r, src = answer_tagged ?workers ~cache req in
            Hashtbl.add by_key key r;
            (r, src))
      in
      match budget_ms with
      | None -> evaluate ()
      | Some budget_ms ->
        let remaining_s =
          (float_of_int budget_ms /. 1000.) -. (Unix.gettimeofday () -. t0)
        in
        if remaining_s <= 0. then begin
          Obs.Metrics.incr m_requests;
          Obs.Metrics.incr m_deadline;
          (Protocol.Deadline_exceeded { budget_ms }, Uncacheable)
        end
        else with_cluster_timeout remaining_s evaluate)
    items
