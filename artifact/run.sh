#!/usr/bin/env bash
# Reproducibility artifact runner for the PODC 2022 landscape
# reproduction. One script regenerates everything EXPERIMENTS.md and
# the BENCH_*.json series record, and runs the fixed-seed differential
# fuzz sweep that proves every engine configuration byte-identical.
#
#   artifact/run.sh            full run: tests + all experiments + fuzz
#   artifact/run.sh --smoke    bounded CI-sized run: build + fuzz sweep
#                              + classifier spot checks (minutes, no
#                              million-node benches)
#
# Outputs land in artifact/out/:
#   experiments.log        raw E1..E16 + Figure-1 + Bechamel output —
#                          the source of every EXPERIMENTS.md row
#   BENCH_SUBSTRATE.json   freshly measured bench points (same schema
#   BENCH_OBS.json         as the recorded series at the repo root;
#   BENCH_FAULT.json       timings move, booleans/gates must not)
#   fuzz_a.jsonl ...       stable fuzz reports (byte-diffed here)
#   injected-repros/       minimized repros from the negative control
#
# The fuzz sweep is the determinism gate: two identical-seed runs and a
# run under LCL_WORKERS=3 LCL_DOMAINS=4 must produce byte-identical
# reports, and an injected divergence must shrink to a repro file that
# `lcl_tool fuzz --replay` rejects with a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) echo "usage: artifact/run.sh [--smoke]" >&2; exit 2 ;;
  esac
done

OUT=artifact/out
rm -rf "$OUT"
mkdir -p "$OUT"

say() { echo "== $* ==" >&2; }

say "build"
dune build
TOOL=./_build/default/bin/lcl_tool.exe

fuzz_sweep() {
  local cases="$1"
  say "fuzz sweep: seed 42, $cases cases, full oracle matrix + serve leg"
  "$TOOL" fuzz --seed 42 --cases "$cases" \
    --repro-dir "$OUT/fuzz-repros" > "$OUT/fuzz_a.jsonl"
  "$TOOL" fuzz --seed 42 --cases "$cases" \
    --repro-dir "$OUT/fuzz-repros" > "$OUT/fuzz_b.jsonl"
  cmp "$OUT/fuzz_a.jsonl" "$OUT/fuzz_b.jsonl"
  LCL_WORKERS=3 LCL_DOMAINS=4 "$TOOL" fuzz --seed 42 --cases "$cases" \
    --repro-dir "$OUT/fuzz-repros" > "$OUT/fuzz_w3.jsonl"
  cmp "$OUT/fuzz_a.jsonl" "$OUT/fuzz_w3.jsonl"
  echo "fuzz report byte-identical across runs and worker counts" >&2

  say "fuzz negative control: injected divergence -> minimized repro -> replay"
  local rc=0
  "$TOOL" fuzz --seed 42 --cases 2 --no-serve --inject-break workers3 \
    --repro-dir "$OUT/injected-repros" \
    > "$OUT/fuzz_injected.jsonl" 2> "$OUT/fuzz_injected.log" || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "injected-break run should exit 1, got $rc" >&2; exit 1
  fi
  local replayed=0
  for r in "$OUT"/injected-repros/*.lclfuzz; do
    [ -e "$r" ] || { echo "no repro emitted" >&2; exit 1; }
    rc=0
    "$TOOL" fuzz --replay "$r" >> "$OUT/fuzz_replay.jsonl" || rc=$?
    if [ "$rc" -ne 1 ]; then
      echo "replay of $r should exit 1 (reproduces), got $rc" >&2; exit 1
    fi
    replayed=$((replayed + 1))
  done
  echo "replayed $replayed minimized repro(s): all reproduce" >&2
}

classify_spot_check() {
  say "classifier spot check: replay + byte-stable JSON"
  for name in 3-coloring sinkless-orientation mis; do
    "$TOOL" classify --replay "$name" > /dev/null
    "$TOOL" classify --json "$name" > "$OUT/classify-$name.json"
    "$TOOL" classify --json "$name" > "$OUT/classify-rerun.json"
    cmp "$OUT/classify-$name.json" "$OUT/classify-rerun.json"
  done
  rm -f "$OUT/classify-rerun.json"
}

if [ "$SMOKE" -eq 1 ]; then
  fuzz_sweep 10
  classify_spot_check
  say "smoke run complete; outputs in $OUT/"
  exit 0
fi

say "test suite"
dune runtest

# The full experiment sweep. bench/main.exe runs E14 (the forking
# cluster section) first on its own, then everything else; the
# million-node sections (E13, E14) dominate the wall time. The raw log
# is the source of every EXPERIMENTS.md row; the machine-readable
# {"bench":...} lines are split into per-series files matching the
# recorded BENCH_*.json at the repo root.
say "experiments E1..E16 + Figure 1 + Bechamel (this takes a while)"
dune exec bench/main.exe 2>&1 | tee "$OUT/experiments.log"

grep -h '^{"bench":"substrate"\|^{"bench":"cluster"' "$OUT/experiments.log" \
  > "$OUT/BENCH_SUBSTRATE.json" || true
grep -h '^{"bench":"obs-overhead"' "$OUT/experiments.log" \
  > "$OUT/BENCH_OBS.json" || true
grep -h '^{"bench":"fault-overhead"\|^{"bench":"serve-robustness"' \
  "$OUT/experiments.log" > "$OUT/BENCH_FAULT.json" || true
say "bench points: $(cat "$OUT"/BENCH_*.json | wc -l) lines across 3 series"

fuzz_sweep 50
classify_spot_check

say "full artifact run complete; outputs in $OUT/"
