(* lcl_tool — command line interface to the library.

   Subcommands:
     show       parse a problem file and pretty-print it
     classify   classify a degree-2 problem on oriented cycles/paths
     gap        run the tree gap pipeline (Theorem 3.10) on a problem
     eliminate  apply k round elimination steps and print the result
     simulate   run a named algorithm on a generated graph and verify
     zoo        list the built-in problems
     lint       static diagnostics over problem files (Analysis.Lint)
     sanitize   check an algorithm's claimed radius / order-invariance

   Problems are given either as a file in the [Lcl.Parse] format or as
   the name of a zoo problem (see `lcl_tool zoo`). *)

open Cmdliner

let zoo_problems =
  [
    ("trivial", Lcl.Zoo.trivial ~delta:3);
    ("free-choice", Lcl.Zoo.free_choice ~delta:3);
    ("edge-orientation", Lcl.Zoo.edge_orientation ~delta:3);
    ("edge-orientation-d2", Lcl.Zoo.edge_orientation ~delta:2);
    ("echo-input", Lcl.Zoo.echo_input ~delta:2);
    ("3-coloring", Lcl.Zoo.coloring ~k:3 ~delta:2);
    ("2-coloring", Lcl.Zoo.coloring ~k:2 ~delta:2);
    ("4-coloring-d3", Lcl.Zoo.coloring ~k:4 ~delta:3);
    ("3-edge-coloring", Lcl.Zoo.edge_coloring ~k:3 ~delta:2);
    ("mis", Lcl.Zoo.mis ~delta:2);
    ("mis-d3", Lcl.Zoo.mis ~delta:3);
    ("maximal-matching", Lcl.Zoo.maximal_matching ~delta:2);
    ("sinkless-orientation", Lcl.Zoo.sinkless_orientation ~delta:3);
    ("consistent-orientation", Lcl.Zoo.consistent_orientation);
    ("period-3", Lcl.Zoo.period_pattern ~k:3);
    ("forbidden-color", Lcl.Zoo.forbidden_color_coloring);
    ("weak-2-coloring", Lcl.Zoo.weak_2_coloring ~delta:3 ());
    ("weak-2-coloring-d2", Lcl.Zoo.weak_2_coloring ~delta:2 ());
  ]

let load_problem spec =
  match List.assoc_opt spec zoo_problems with
  | Some p -> Ok p
  | None -> (
    match In_channel.with_open_text spec In_channel.input_all with
    | text -> (
      try Ok (Lcl.Parse.of_string text) with
      | Lcl.Parse.Parse_error { message; line } ->
        Error
          (Printf.sprintf "parse error: %s"
             (Lcl.Parse.error_to_string ~message ~line)))
    | exception Sys_error m -> Error m)

let problem_arg =
  let doc = "Problem: a zoo name (see the zoo subcommand) or a file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROBLEM" ~doc)

let with_problem f spec =
  match load_problem spec with
  | Ok p -> f p
  | Error m ->
    Fmt.epr "error: %s@." m;
    exit 1

(* -- show -------------------------------------------------------------- *)

let show_cmd =
  let run = with_problem (fun p -> Fmt.pr "%a@." Lcl.Problem.pp p) in
  Cmd.v (Cmd.info "show" ~doc:"Parse and pretty-print a problem")
    Term.(const run $ problem_arg)

(* -- zoo --------------------------------------------------------------- *)

let zoo_cmd =
  let run () =
    List.iter
      (fun (name, p) ->
        Fmt.pr "%-24s delta=%d  |out|=%d@." name (Lcl.Problem.delta p)
          (Lcl.Alphabet.size (Lcl.Problem.sigma_out p)))
      zoo_problems
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List built-in problems") Term.(const run $ const ())

(* -- classify ---------------------------------------------------------- *)

let classify_cmd =
  let run =
    with_problem (fun p ->
        if Lcl.Problem.delta p <> 2 then begin
          Fmt.epr "classify handles degree-2 problems (cycles/paths)@.";
          exit 1
        end;
        Fmt.pr "on oriented cycles: %a@." Classify.Cycle_path.pp_verdict
          (Classify.Cycle_path.classify_cycle p);
        Fmt.pr "on oriented paths:  %a@." Classify.Cycle_path.pp_verdict
          (Classify.Cycle_path.classify_path p))
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Classify an input-free degree-2 problem on oriented cycles/paths")
    Term.(const run $ problem_arg)

(* -- gap ---------------------------------------------------------------- *)

let iterations_arg =
  Arg.(value & opt int 4 & info [ "iterations" ] ~doc:"Max f-iterations.")

let labels_arg =
  Arg.(value & opt int 400 & info [ "max-labels" ] ~doc:"Label budget.")

let gap_cmd =
  let run iters labels =
    with_problem (fun p ->
        let r = Relim.Pipeline.run ~max_iterations:iters ~max_labels:labels p in
        List.iter
          (fun (e : Relim.Pipeline.trace_entry) ->
            Fmt.pr "f^%d: %4d labels, 0-round solvable: %b@." e.iteration
              e.labels e.zero_round)
          r.Relim.Pipeline.trace;
        Fmt.pr "verdict: %a@." Relim.Pipeline.pp_verdict r.Relim.Pipeline.verdict;
        match r.Relim.Pipeline.verdict with
        | Relim.Pipeline.Constant { algo; _ } ->
          let v = Classify.Tree_gap.validate ~problem:p algo in
          Fmt.pr "validation on random forests: %s@."
            (if v.Classify.Tree_gap.all_valid then "all valid" else "FAILURES")
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "gap" ~doc:"Run the Theorem 3.10 gap pipeline on a problem")
    Term.(const run $ iterations_arg $ labels_arg $ problem_arg)

(* -- eliminate ---------------------------------------------------------- *)

let steps_arg =
  Arg.(value & opt int 1 & info [ "steps" ] ~doc:"Number of f = R~(R(.)) steps.")

let eliminate_cmd =
  let run steps =
    with_problem (fun p ->
        let rec go k p =
          if k = 0 then p
          else begin
            let s = Relim.Eliminate.speedup_step p in
            let q = s.Relim.Eliminate.after.Relim.Eliminate.problem in
            Fmt.pr "-- after step %d: %d labels --@."
              (steps - k + 1)
              (Lcl.Alphabet.size (Lcl.Problem.sigma_out q));
            go (k - 1) q
          end
        in
        let q = go steps p in
        Fmt.pr "%a@." Lcl.Problem.pp q)
  in
  Cmd.v
    (Cmd.info "eliminate" ~doc:"Apply round elimination steps and print")
    Term.(const run $ steps_arg $ problem_arg)

(* -- simulate ----------------------------------------------------------- *)

let n_arg = Arg.(value & opt int 64 & info [ "n" ] ~doc:"Graph size.")

let algo_arg =
  let doc = "Algorithm: cv-coloring, mis, matching, luby." in
  Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)

let simulate_cmd =
  let run n algo_name () =
    let g = Graph.Builder.oriented_cycle n in
    let algo, problem =
      match algo_name with
      | "cv-coloring" ->
        (Local.Cole_vishkin.three_coloring, Lcl.Zoo.coloring ~k:3 ~delta:2)
      | "mis" -> (Local.Mis.algorithm, Lcl.Zoo.mis ~delta:2)
      | "matching" ->
        (Local.Matching.algorithm, Lcl.Zoo.maximal_matching ~delta:2)
      | "luby" -> (Local.Luby.algorithm, Lcl.Zoo.mis ~delta:2)
      | other ->
        Fmt.epr "unknown algorithm %s@." other;
        exit 1
    in
    let o = Local.Runner.run ~problem algo g in
    Fmt.pr "%s on oriented C_%d: radius %d, violations %d@." algo_name n
      o.Local.Runner.radius_used
      (List.length o.Local.Runner.violations)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a baseline algorithm on an oriented cycle")
    Term.(const run $ n_arg $ algo_arg $ const ())

(* -- volume ------------------------------------------------------------ *)

let volume_algo_arg =
  let doc = "Probe algorithm: cv-coloring, walker, const." in
  Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)

let volume_cmd =
  let run n algo_name () =
    let algo, problem, g =
      match algo_name with
      | "cv-coloring" ->
        ( Volume.Algorithms.cv_coloring,
          Lcl.Zoo_oriented.coloring ~k:3,
          Lcl.Zoo_oriented.mark_orientation_inputs
            (Graph.Builder.oriented_cycle n) )
      | "walker" ->
        ( Volume.Algorithms.two_coloring_walker,
          Lcl.Zoo_oriented.coloring ~k:2,
          Lcl.Zoo_oriented.mark_orientation_inputs
            (Graph.Builder.oriented_cycle (2 * ((n + 1) / 2))) )
      | "const" ->
        ( Volume.Algorithms.constant_choice ~name:"const" 0,
          Lcl.Zoo.free_choice ~delta:2,
          Graph.Builder.cycle n )
      | other ->
        Fmt.epr "unknown probe algorithm %s@." other;
        exit 1
    in
    let o = Volume.Probe.run ~problem algo g in
    Fmt.pr "%s on C_%d: max probes %d, total %d, violations %d@." algo_name
      (Graph.n g) o.Volume.Probe.max_probes o.Volume.Probe.total_probes
      (List.length o.Volume.Probe.violations)
  in
  Cmd.v
    (Cmd.info "volume" ~doc:"Run a VOLUME (probe) algorithm on a cycle")
    Term.(const run $ n_arg $ volume_algo_arg $ const ())

(* -- lint ---------------------------------------------------------------- *)

let lint_cmd =
  let files_arg =
    let doc = "Problem files (.lcl) to lint." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Non-zero exit on warnings, not only errors.")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Structural checks only: skip the 0-round-solvability and \
             degree-2 classification cross-checks.")
  in
  let run files json strict fast () =
    let diags =
      List.concat_map (fun f -> Analysis.Lint.file ~deep:(not fast) f) files
      |> List.sort Analysis.Diagnostic.compare
    in
    let errors = Analysis.Diagnostic.count Analysis.Diagnostic.Error diags in
    let warnings = Analysis.Diagnostic.count Analysis.Diagnostic.Warning diags in
    if json then print_endline (Analysis.Diagnostic.list_to_json diags)
    else begin
      List.iter
        (fun d -> Fmt.pr "%a@." Analysis.Diagnostic.pp d)
        diags;
      Fmt.pr "%d file%s linted: %d error%s, %d warning%s, %d info%s@."
        (List.length files)
        (if List.length files = 1 then "" else "s")
        errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
        (Analysis.Diagnostic.count Analysis.Diagnostic.Info diags)
        (if Analysis.Diagnostic.count Analysis.Diagnostic.Info diags = 1 then
           ""
         else "s")
    end;
    if errors > 0 || (strict && warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze problem files: structural diagnostics \
          (unusable labels, empty degree rows, degenerate g-images, pruned \
          normal form) plus 0-round-triviality and degree-2 classification \
          notes")
    Term.(const run $ files_arg $ json_arg $ strict_arg $ fast_arg $ const ())

(* -- sanitize ------------------------------------------------------------ *)

let sanitize_cmd =
  let algo_arg =
    let doc =
      "Algorithm to sanitize: cv-coloring, mis, matching, luby, or \
       radius-cheater (a negative control claiming radius 1 while reading \
       radius 2)."
    in
    Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)
  in
  let order_arg =
    Arg.(
      value & flag
      & info [ "order-invariant" ]
          ~doc:"Also check a claim of order-invariance (Def. 2.7).")
  in
  let run n algo_name order () =
    let algo =
      match algo_name with
      | "cv-coloring" -> Local.Cole_vishkin.three_coloring
      | "mis" -> Local.Mis.algorithm
      | "matching" -> Local.Matching.algorithm
      | "luby" -> Local.Luby.algorithm
      | "radius-cheater" -> Analysis.Sanitizer.radius_cheater
      | other ->
        Fmt.epr "unknown algorithm %s@." other;
        exit 2
    in
    let g = Graph.Builder.oriented_cycle n in
    let r =
      Analysis.Sanitizer.check_local ~claims_order_invariance:order algo g
    in
    List.iter
      (fun d -> Fmt.pr "%a@." Analysis.Diagnostic.pp d)
      r.Analysis.Sanitizer.diagnostics;
    if Analysis.Diagnostic.has_errors r.Analysis.Sanitizer.diagnostics then
      exit 1
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Check that an algorithm honors its claimed radius (and optionally \
          order-invariance) on sampled views of an oriented cycle")
    Term.(const run $ n_arg $ algo_arg $ order_arg $ const ())

(* -- bench-runner ------------------------------------------------------- *)

(* Timed series over the simulation engine, one JSON object per line —
   the machine-readable counterpart of bench/main.exe's runner-bound
   sections, meant to be collected into BENCH_*.json files across
   revisions. Each workload is measured sequentially (domains=1, no
   memo: the seed path) and then on the configured engine; speedup is
   engine vs. sequential within the same invocation. *)

let bench_json ~workload ~n ~config (o : Local.Runner.outcome) ~speedup =
  let s = o.Local.Runner.stats in
  Printf.printf
    "{\"bench\":\"runner\",\"workload\":\"%s\",\"n\":%d,\"radius\":%d,\
     \"domains\":%d,\"memo\":%b,\"balls\":%d,\"cache_hits\":%d,\
     \"distinct_views\":%d,\"simulate_s\":%.6f,\"verify_s\":%.6f,\
     \"total_s\":%.6f,\"violations\":%d%s}\n"
    workload n o.Local.Runner.radius_used s.Local.Runner.domains_used
    (snd config) s.Local.Runner.balls_extracted s.Local.Runner.cache_hits
    s.Local.Runner.distinct_views s.Local.Runner.simulate_seconds
    s.Local.Runner.verify_seconds s.Local.Runner.total_seconds
    (List.length o.Local.Runner.violations)
    (match speedup with
    | None -> ""
    | Some x -> Printf.sprintf ",\"speedup_vs_seq\":%.2f" x)

let bench_runner_cmd =
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:
            "Engine worker domains; 0 (the default) means min(4, core \
             count) — oversubscribing cores only adds GC barriers.")
  in
  let cycle_n_arg =
    Arg.(value & opt int 16384 & info [ "cycle-n" ] ~doc:"Cycle workload size.")
  in
  let side_arg =
    Arg.(value & opt int 24 & info [ "side" ] ~doc:"Torus side length.")
  in
  let run domains cycle_n side () =
    if side < 3 then begin
      Fmt.epr "bench-runner: --side must be >= 3 (got %d)@." side;
      exit 2
    end;
    if cycle_n < 3 then begin
      Fmt.epr "bench-runner: --cycle-n must be >= 3 (got %d)@." cycle_n;
      exit 2
    end;
    let domains =
      if domains >= 1 then domains else min 4 (Util.Parallel.recommended ())
    in
    (* (label, algo, problem, graph, ids, memo-soundness) per workload;
       memo stays off for id-reading algorithms (CV, torus coloring) *)
    let cycle = Graph.Builder.oriented_cycle cycle_n in
    let torus = Grid.Problems.mark_tag_inputs (Grid.Torus.make [| side; side |]) in
    let tg = Grid.Torus.graph torus in
    let tids = (Grid.Torus.prod_ids torus).Grid.Torus.packed in
    let workloads =
      [
        ( "cycle-cv3", cycle_n, Local.Cole_vishkin.three_coloring,
          Lcl.Zoo.coloring ~k:3 ~delta:2, cycle, `Random, false );
        ( "torus-echo", side * side, Grid.Algorithms.dimension_echo,
          Grid.Problems.dimension_echo ~d:2, tg, `Fixed tids, true );
        ( "torus-echo-fooled", side * side,
          Local.Order_invariant.speedup ~n0:16 Grid.Algorithms.dimension_echo,
          Grid.Problems.dimension_echo ~d:2, tg, `Fixed tids, true );
        ( "torus-dim0-2col", side * side,
          Grid.Algorithms.dim0_two_coloring
            ~base:(Grid.Torus.prod_ids torus).Grid.Torus.base ~side,
          Grid.Problems.dim0_two_coloring ~d:2, tg, `Fixed tids, false );
      ]
    in
    List.iter
      (fun (label, n, algo, problem, g, ids, memo_sound) ->
        let seq = Local.Runner.run ~ids ~domains:1 ~memo:false ~problem algo g in
        bench_json ~workload:label ~n ~config:(1, false) seq ~speedup:None;
        let eng =
          Local.Runner.run ~ids ~domains ~memo:memo_sound ~problem algo g
        in
        let speedup =
          seq.Local.Runner.stats.Local.Runner.simulate_seconds
          /. max 1e-9 eng.Local.Runner.stats.Local.Runner.simulate_seconds
        in
        if eng.Local.Runner.labeling <> seq.Local.Runner.labeling then begin
          Fmt.epr "bench-runner: %s engine labeling diverged@." label;
          exit 1
        end;
        bench_json ~workload:label ~n ~config:(domains, memo_sound) eng
          ~speedup:(Some speedup))
      workloads
  in
  Cmd.v
    (Cmd.info "bench-runner"
       ~doc:
         "Time the simulation engine (sequential vs parallel+memo) and print \
          a JSON line per run")
    Term.(const run $ domains_arg $ cycle_n_arg $ side_arg $ const ())

let main =
  Cmd.group
    (Cmd.info "lcl_tool" ~version:"1.0"
       ~doc:"LCL landscape toolkit (PODC 2022 reproduction)")
    [ show_cmd; zoo_cmd; classify_cmd; gap_cmd; eliminate_cmd; simulate_cmd;
      volume_cmd; lint_cmd; sanitize_cmd; bench_runner_cmd ]

let () = exit (Cmd.eval main)
