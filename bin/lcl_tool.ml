(* lcl_tool — command line interface to the library.

   Subcommands:
     show       parse a problem file and pretty-print it
     classify   static landscape classification with replayable certificates
     gap        run the tree gap pipeline (Theorem 3.10) on a problem
     eliminate  apply k round elimination steps and print the result
     simulate   run a named algorithm on a generated graph and verify
     zoo        list the built-in problems
     lint       static diagnostics over problem files (Analysis.Lint)
     sanitize   check an algorithm's claimed radius / order-invariance
     faultsim   run a workload under a fault plan, report degradation

   Problems are given either as a file in the [Lcl.Parse] format or as
   the name of a zoo problem (see `lcl_tool zoo`). *)

open Cmdliner

(* the zoo lives in [Serve.Zoo_table] so daemon requests accept the
   same problem names as the command line *)
let zoo_problems = Serve.Zoo_table.all

let load_problem spec =
  match List.assoc_opt spec zoo_problems with
  | Some p -> Ok p
  | None -> (
    match In_channel.with_open_text spec In_channel.input_all with
    | text -> (
      try Ok (Lcl.Parse.of_string text) with
      | Lcl.Parse.Parse_error { message; line } ->
        Error
          (Printf.sprintf "parse error: %s"
             (Lcl.Parse.error_to_string ~message ~line)))
    | exception Sys_error m -> Error m)

let problem_arg =
  let doc = "Problem: a zoo name (see the zoo subcommand) or a file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROBLEM" ~doc)

let with_problem f spec =
  match load_problem spec with
  | Ok p -> f p
  | Error m ->
    Fmt.epr "error: %s@." m;
    exit 1

(* -- show -------------------------------------------------------------- *)

let show_cmd =
  let run = with_problem (fun p -> Fmt.pr "%a@." Lcl.Problem.pp p) in
  Cmd.v (Cmd.info "show" ~doc:"Parse and pretty-print a problem")
    Term.(const run $ problem_arg)

(* -- zoo --------------------------------------------------------------- *)

let zoo_cmd =
  let run () =
    List.iter
      (fun (name, p) ->
        Fmt.pr "%-24s delta=%d  |out|=%d@." name (Lcl.Problem.delta p)
          (Lcl.Alphabet.size (Lcl.Problem.sigma_out p)))
      zoo_problems
  in
  Cmd.v (Cmd.info "zoo" ~doc:"List built-in problems") Term.(const run $ const ())

(* -- gap ---------------------------------------------------------------- *)

let iterations_arg =
  Arg.(value & opt int 4 & info [ "iterations" ] ~doc:"Max f-iterations.")

let labels_arg =
  Arg.(value & opt int 400 & info [ "max-labels" ] ~doc:"Label budget.")

let gap_cmd =
  let run iters labels =
    with_problem (fun p ->
        let r = Relim.Pipeline.run ~max_iterations:iters ~max_labels:labels p in
        List.iter
          (fun (e : Relim.Pipeline.trace_entry) ->
            Fmt.pr "f^%d: %4d labels, 0-round solvable: %b@." e.iteration
              e.labels e.zero_round)
          r.Relim.Pipeline.trace;
        Fmt.pr "verdict: %a@." Relim.Pipeline.pp_verdict r.Relim.Pipeline.verdict;
        match r.Relim.Pipeline.verdict with
        | Relim.Pipeline.Constant { algo; _ } ->
          let v = Classify.Tree_gap.validate ~problem:p algo in
          Fmt.pr "validation on random forests: %s@."
            (if v.Classify.Tree_gap.all_valid then "all valid" else "FAILURES")
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "gap" ~doc:"Run the Theorem 3.10 gap pipeline on a problem")
    Term.(const run $ iterations_arg $ labels_arg $ problem_arg)

(* -- eliminate ---------------------------------------------------------- *)

let steps_arg =
  Arg.(value & opt int 1 & info [ "steps" ] ~doc:"Number of f = R~(R(.)) steps.")

let eliminate_cmd =
  let run steps =
    with_problem (fun p ->
        let rec go k p =
          if k = 0 then p
          else begin
            let s = Relim.Eliminate.speedup_step p in
            let q = s.Relim.Eliminate.after.Relim.Eliminate.problem in
            Fmt.pr "-- after step %d: %d labels --@."
              (steps - k + 1)
              (Lcl.Alphabet.size (Lcl.Problem.sigma_out q));
            go (k - 1) q
          end
        in
        let q = go steps p in
        Fmt.pr "%a@." Lcl.Problem.pp q)
  in
  Cmd.v
    (Cmd.info "eliminate" ~doc:"Apply round elimination steps and print")
    Term.(const run $ steps_arg $ problem_arg)

(* -- simulate ----------------------------------------------------------- *)

let n_arg = Arg.(value & opt int 64 & info [ "n" ] ~doc:"Graph size.")

let algo_arg =
  let doc = "Algorithm: cv-coloring, mis, matching, luby." in
  Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)

let check_n ~cmd n =
  if n < 3 then begin
    Fmt.epr "%s: -n must be >= 3 (got %d)@." cmd n;
    exit 2
  end

let workers_arg =
  Arg.(
    value & opt (some int) None
    & info [ "workers" ]
        ~doc:
          "Forked worker processes for the simulation engine (default \
           $(b,\\$LCL_WORKERS)); the labeling is identical at any count.")

let simulate_cmd =
  let run n algo_name workers () =
    check_n ~cmd:"simulate" n;
    let g = Graph.Builder.oriented_cycle n in
    let algo, problem =
      match algo_name with
      | "cv-coloring" ->
        (Local.Cole_vishkin.three_coloring, Lcl.Zoo.coloring ~k:3 ~delta:2)
      | "mis" -> (Local.Mis.algorithm, Lcl.Zoo.mis ~delta:2)
      | "matching" ->
        (Local.Matching.algorithm, Lcl.Zoo.maximal_matching ~delta:2)
      | "luby" -> (Local.Luby.algorithm, Lcl.Zoo.mis ~delta:2)
      | other ->
        Fmt.epr "unknown algorithm %s@." other;
        exit 1
    in
    let o = Local.Runner.run ?workers ~problem algo g in
    Fmt.pr "%s on oriented C_%d: radius %d, violations %d@." algo_name n
      o.Local.Runner.radius_used
      (List.length o.Local.Runner.violations)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a baseline algorithm on an oriented cycle")
    Term.(const run $ n_arg $ algo_arg $ workers_arg $ const ())

(* -- volume ------------------------------------------------------------ *)

let volume_algo_arg =
  let doc = "Probe algorithm: cv-coloring, walker, const." in
  Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)

let volume_cmd =
  let run n algo_name workers () =
    check_n ~cmd:"volume" n;
    let algo, problem, g =
      match algo_name with
      | "cv-coloring" ->
        ( Volume.Algorithms.cv_coloring,
          Lcl.Zoo_oriented.coloring ~k:3,
          Lcl.Zoo_oriented.mark_orientation_inputs
            (Graph.Builder.oriented_cycle n) )
      | "walker" ->
        ( Volume.Algorithms.two_coloring_walker,
          Lcl.Zoo_oriented.coloring ~k:2,
          Lcl.Zoo_oriented.mark_orientation_inputs
            (Graph.Builder.oriented_cycle (2 * ((n + 1) / 2))) )
      | "const" ->
        ( Volume.Algorithms.constant_choice ~name:"const" 0,
          Lcl.Zoo.free_choice ~delta:2,
          Graph.Builder.cycle n )
      | other ->
        Fmt.epr "unknown probe algorithm %s@." other;
        exit 1
    in
    let o = Volume.Probe.run ?workers ~problem algo g in
    Fmt.pr "%s on C_%d: max probes %d, total %d, violations %d@." algo_name
      (Graph.n g) o.Volume.Probe.max_probes o.Volume.Probe.total_probes
      (List.length o.Volume.Probe.violations)
  in
  Cmd.v
    (Cmd.info "volume" ~doc:"Run a VOLUME (probe) algorithm on a cycle")
    Term.(const run $ n_arg $ volume_algo_arg $ workers_arg $ const ())

(* -- lint ---------------------------------------------------------------- *)

let lint_cmd =
  let files_arg =
    let doc = "Problem files (.lcl) to lint." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Non-zero exit on warnings, not only errors.")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Structural checks only: skip the 0-round-solvability and \
             degree-2 classification cross-checks.")
  in
  let run files json strict fast () =
    let diags =
      List.concat_map (fun f -> Analysis.Lint.file ~deep:(not fast) f) files
      |> List.sort Analysis.Diagnostic.compare
    in
    let errors = Analysis.Diagnostic.count Analysis.Diagnostic.Error diags in
    let warnings = Analysis.Diagnostic.count Analysis.Diagnostic.Warning diags in
    if json then print_endline (Analysis.Diagnostic.list_to_json diags)
    else begin
      List.iter
        (fun d -> Fmt.pr "%a@." Analysis.Diagnostic.pp d)
        diags;
      Fmt.pr "%d file%s linted: %d error%s, %d warning%s, %d info%s@."
        (List.length files)
        (if List.length files = 1 then "" else "s")
        errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
        (Analysis.Diagnostic.count Analysis.Diagnostic.Info diags)
        (if Analysis.Diagnostic.count Analysis.Diagnostic.Info diags = 1 then
           ""
         else "s")
    end;
    if errors > 0 || (strict && warnings > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze problem files: structural diagnostics \
          (unusable labels, empty degree rows, degenerate g-images, pruned \
          normal form) plus 0-round-triviality and degree-2 classification \
          notes")
    Term.(const run $ files_arg $ json_arg $ strict_arg $ fast_arg $ const ())

(* -- sanitize ------------------------------------------------------------ *)

let sanitize_cmd =
  let algo_arg =
    let doc =
      "Algorithm to sanitize: cv-coloring, mis, matching, luby, or \
       radius-cheater (a negative control claiming radius 1 while reading \
       radius 2)."
    in
    Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)
  in
  let order_arg =
    Arg.(
      value & flag
      & info [ "order-invariant" ]
          ~doc:"Also check a claim of order-invariance (Def. 2.7).")
  in
  let run n algo_name order () =
    check_n ~cmd:"sanitize" n;
    let algo =
      match algo_name with
      | "cv-coloring" -> Local.Cole_vishkin.three_coloring
      | "mis" -> Local.Mis.algorithm
      | "matching" -> Local.Matching.algorithm
      | "luby" -> Local.Luby.algorithm
      | "radius-cheater" -> Analysis.Sanitizer.radius_cheater
      | other ->
        Fmt.epr "unknown algorithm %s@." other;
        exit 2
    in
    let g = Graph.Builder.oriented_cycle n in
    let r =
      Analysis.Sanitizer.check_local ~claims_order_invariance:order algo g
    in
    List.iter
      (fun d -> Fmt.pr "%a@." Analysis.Diagnostic.pp d)
      r.Analysis.Sanitizer.diagnostics;
    if Analysis.Diagnostic.has_errors r.Analysis.Sanitizer.diagnostics then
      exit 1
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Check that an algorithm honors its claimed radius (and optionally \
          order-invariance) on sampled views of an oriented cycle")
    Term.(const run $ n_arg $ algo_arg $ order_arg $ const ())

(* -- observability helpers ---------------------------------------------- *)

(* [--metrics] on the workload commands: flip the switch on for the
   run and append the metric snapshot as JSONL after the report. The
   snapshot holds pure counts (never wall times), so it is as
   byte-stable as the report it follows. *)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Record observability metrics during the run and print the \
           nonzero ones as JSON lines after the report.")

let obs_begin metrics = if metrics then begin Obs.enable (); Obs.reset () end

let obs_end metrics =
  if metrics then print_string (Obs.Export.jsonl [] (Obs.Metrics.snapshot ()))

(* -- classify ------------------------------------------------------------ *)

let classify_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the byte-stable JSON report instead of text.")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Cross-check the certificate against exhaustive search and the \
             simulator on small instances; disagreements are C205 errors \
             and exit status 1.")
  in
  let iters_arg =
    Arg.(
      value & opt int 3
      & info [ "iterations" ] ~doc:"Gap pipeline iteration budget.")
  in
  let max_labels_arg =
    Arg.(
      value & opt int 200
      & info [ "max-labels" ] ~doc:"Gap pipeline label budget.")
  in
  let run json replay iters max_labels workers metrics =
    with_problem (fun p ->
        obs_begin metrics;
        let r =
          Classify.Landscape.classify ~max_iterations:iters
            ~max_labels p
        in
        if json then print_string (Classify.Landscape.to_json r ^ "\n")
        else Fmt.pr "@[<v>%a@]@." Classify.Landscape.pp r;
        let disagreements =
          if not replay then []
          else begin
            let rep = Classify.Landscape.replay ?workers p r in
            if json then
              print_string (Classify.Landscape.replay_to_json rep ^ "\n")
            else Fmt.pr "@[<v>%a@]@." Classify.Landscape.pp_replay rep;
            Analysis.Classifier.of_replay r rep
          end
        in
        obs_end metrics;
        if disagreements <> [] then begin
          List.iter
            (fun d -> Fmt.epr "%a@." Analysis.Diagnostic.pp d)
            disagreements;
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Statically classify a problem in the tree landscape (O(1) / \
          Theta(log* n) / Theta(log n) / n^Theta(1)) with replayable \
          certificates")
    Term.(
      const run $ json_arg $ replay_arg $ iters_arg $ max_labels_arg
      $ workers_arg $ metrics_arg $ problem_arg)

(* -- trace --------------------------------------------------------------- *)

let resolve_local_algo ~cmd algo_name =
  match algo_name with
  | "cv-coloring" ->
    (Local.Cole_vishkin.three_coloring, Lcl.Zoo.coloring ~k:3 ~delta:2)
  | "mis" -> (Local.Mis.algorithm, Lcl.Zoo.mis ~delta:2)
  | "matching" -> (Local.Matching.algorithm, Lcl.Zoo.maximal_matching ~delta:2)
  | "luby" -> (Local.Luby.algorithm, Lcl.Zoo.mis ~delta:2)
  | other ->
    Fmt.epr "%s: unknown algorithm %s@." cmd other;
    exit 2

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "out" ]
          ~doc:
            "Chrome-trace output file; load it in chrome://tracing or \
             Perfetto.")
  in
  let jsonl_arg =
    Arg.(
      value & opt (some string) None
      & info [ "jsonl" ]
          ~doc:
            "Also write the byte-stable JSONL event log here (identical \
             across same-seed runs).")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~doc:"Engine worker domains (default $LCL_DOMAINS).")
  in
  let memo_arg =
    Arg.(value & flag & info [ "memo" ] ~doc:"Enable the view memo cache.")
  in
  let seed_arg =
    Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"Run seed.")
  in
  let problem_opt_arg =
    let doc =
      "Optional problem (zoo name or file): trace the gap pipeline on it \
       instead of a LOCAL workload."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROBLEM" ~doc)
  in
  let run n algo_name domains memo seed iters labels out jsonl_file
      problem_opt () =
    check_n ~cmd:"trace" n;
    Obs.enable ();
    Obs.reset ();
    (match problem_opt with
    | Some spec ->
      with_problem
        (fun p ->
          let r =
            Relim.Pipeline.run ~max_iterations:iters ~max_labels:labels p
          in
          Fmt.pr "verdict: %a@." Relim.Pipeline.pp_verdict
            r.Relim.Pipeline.verdict)
        spec
    | None ->
      let algo, problem = resolve_local_algo ~cmd:"trace" algo_name in
      let g = Graph.Builder.oriented_cycle n in
      let o = Local.Runner.run ~seed ?domains ~memo ~problem algo g in
      Fmt.pr "%s on oriented C_%d: radius %d, violations %d@." algo_name n
        o.Local.Runner.radius_used
        (List.length o.Local.Runner.violations));
    let events = Obs.Span.collect () in
    let metrics = Obs.Metrics.snapshot () in
    Out_channel.with_open_text out (fun oc ->
        Out_channel.output_string oc (Obs.Export.chrome events));
    Option.iter
      (fun f ->
        Out_channel.with_open_text f (fun oc ->
            Out_channel.output_string oc (Obs.Export.jsonl events metrics)))
      jsonl_file;
    print_string (Obs.Export.summary events metrics);
    Fmt.pr "chrome trace: %s (%d spans, %d dropped)@." out (List.length events)
      (Obs.Span.dropped ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload (a LOCAL algorithm on an oriented cycle, or the gap \
          pipeline on PROBLEM) with observability on and export the trace: \
          Chrome-trace JSON, optional byte-stable JSONL, text summary")
    Term.(
      const run $ n_arg $ algo_arg $ domains_arg $ memo_arg $ seed_arg
      $ iterations_arg $ labels_arg $ out_arg $ jsonl_arg $ problem_opt_arg
      $ const ())

(* -- faultsim ------------------------------------------------------------ *)

(* Chaos with a replay button: run a LOCAL algorithm, a VOLUME probe
   algorithm, or the gap pipeline under an explicit fault plan and
   emit a JSON degradation report. The plan comes from --plan (a file
   written by an earlier run) or is drawn from --fault-seed and the
   intensity flags and embedded verbatim in the report — so piping the
   report's "plan" object back through --plan replays the exact run.
   Reports carry no wall times: the same invocation prints the same
   bytes at any worker count, which the CI chaos job diffs. *)

let faultsim_plan_of_args ~plan_file ~fault_seed ~crash ~sever ~corrupt ~flip
    ~probe_loss g =
  match plan_file with
  | Some f -> (
    match In_channel.with_open_text f In_channel.input_all with
    | exception Sys_error m -> Error (Fault.Error.f ~code:"F301" "%s" m)
    | text -> (
      match Fault.Plan.of_string text with
      | Ok p -> Ok p
      | Error e -> Error e))
  | None ->
    let spec =
      Fault.Plan.spec ~crash ~sever ~corrupt ~flip ~probe:probe_loss ()
    in
    Ok (Fault.Plan.generate ~label:"faultsim" ~seed:fault_seed ~spec g)

let faultsim_statuses_json (statuses : Fault.status array) =
  let worst =
    Array.to_list statuses
    |> List.mapi (fun v s -> (v, s))
    |> List.filter_map (fun (v, s) ->
           match s with
           | Fault.Errored e ->
             Some (Fault.Json.Obj [ ("node", Int v); ("error", Fault.Error.to_json e) ])
           | _ -> None)
  in
  (* cap the error detail so huge graphs keep reports readable *)
  Fault.Json.List
    (if List.length worst > 8 then
       List.filteri (fun i _ -> i < 8) worst
     else worst)

let faultsim_local_report ~algo_name ~n (o : Local.Runner.resilient_outcome) =
  let r = o.Local.Runner.report in
  Fault.Json.Obj
    [
      ("faultsim", String "local");
      ("algo", String algo_name);
      ("n", Int n);
      ("plan", Fault.Plan.to_json r.Local.Runner.applied);
      ("radius", Int o.Local.Runner.r_radius_used);
      ("ok", Int r.Local.Runner.ok_nodes);
      ("crashed", Int r.Local.Runner.crashed_nodes);
      ("starved", Int r.Local.Runner.starved_nodes);
      ("errored", Int r.Local.Runner.errored_nodes);
      ("severed_edges", Int r.Local.Runner.severed_edges);
      ("retries_used", Int r.Local.Runner.retries_used);
      ("healthy_violations", Int (List.length o.Local.Runner.healthy_violations));
      ("errors", faultsim_statuses_json r.Local.Runner.statuses);
    ]

let faultsim_volume_report ~algo_name ~n (o : Volume.Probe.resilient_outcome) =
  let r = o.Volume.Probe.report in
  Fault.Json.Obj
    [
      ("faultsim", String "volume");
      ("algo", String algo_name);
      ("n", Int n);
      ("plan", Fault.Plan.to_json r.Volume.Probe.applied);
      ("max_probes", Int o.Volume.Probe.r_max_probes);
      ("total_probes", Int o.Volume.Probe.r_total_probes);
      ("ok", Int r.Volume.Probe.ok_nodes);
      ("crashed", Int r.Volume.Probe.crashed_nodes);
      ("starved", Int r.Volume.Probe.starved_nodes);
      ("errored", Int r.Volume.Probe.errored_nodes);
      ("retries_used", Int r.Volume.Probe.retries_used);
      ("healthy_violations", Int (List.length o.Volume.Probe.healthy_violations));
      ("errors", faultsim_statuses_json r.Volume.Probe.statuses);
    ]

let faultsim_verdict_string = function
  | Relim.Pipeline.Constant { rounds; _ } ->
    Printf.sprintf "constant:%d" rounds
  | Relim.Pipeline.Lower_bound_log_star { fixed_point_at } ->
    Printf.sprintf "log_star_lower_bound:%d" fixed_point_at
  | Relim.Pipeline.Budget_exceeded { at_iteration; labels } ->
    Printf.sprintf "budget_exceeded:%d:%d" at_iteration labels
  | Relim.Pipeline.Deadline_exceeded { at_iteration; _ } ->
    (* no elapsed time: reports must be byte-stable across runs *)
    Printf.sprintf "deadline_exceeded:%d" at_iteration

let faultsim_cmd =
  let algo_arg =
    let doc =
      "Workload when no PROBLEM is given: a LOCAL algorithm (cv-coloring, \
       mis, matching, luby) on an oriented cycle, or a VOLUME one \
       (probe-cv-coloring, probe-walker, probe-const) on a cycle."
    in
    Arg.(value & opt string "cv-coloring" & info [ "algo" ] ~doc)
  in
  let plan_arg =
    Arg.(
      value & opt (some file) None
      & info [ "plan" ] ~doc:"Fault plan JSON file (overrides generation).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~doc:"Seed for drawing the fault plan.")
  in
  let rate name doc = Arg.(value & opt float 0. & info [ name ] ~doc) in
  let crash_arg = rate "crash" "Crash-stop node fraction in [0,1]." in
  let sever_arg = rate "sever" "Severed (message-loss) edge fraction." in
  let corrupt_arg = rate "corrupt" "Corrupted-identifier node fraction." in
  let flip_arg = rate "flip" "Randomness-bit-flip node fraction." in
  let probe_loss_arg = rate "probe-loss" "Lost-probe fraction (VOLUME)." in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~doc:"Re-attempts for failing nodes/runs.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ]
          ~doc:"Pipeline wall-clock deadline in seconds (PROBLEM mode).")
  in
  let seed_arg =
    Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"Run seed.")
  in
  let problem_opt_arg =
    let doc =
      "Optional problem (zoo name or file): run the gap pipeline under \
       --deadline and validate a Constant verdict's algorithm resiliently \
       on a random forest."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROBLEM" ~doc)
  in
  let fail_error e =
    Fmt.epr "error: %s@." (Fault.Error.to_string e);
    exit 1
  in
  let with_plan ~plan_file ~fault_seed ~crash ~sever ~corrupt ~flip
      ~probe_loss g k =
    match
      faultsim_plan_of_args ~plan_file ~fault_seed ~crash ~sever ~corrupt
        ~flip ~probe_loss g
    with
    | Error e -> fail_error e
    | Ok plan -> k plan
  in
  let run_local ~algo_name ~n ~plan ~retries ~seed ~workers =
    let algo, problem = resolve_local_algo ~cmd:"faultsim" algo_name in
    let g = Graph.Builder.oriented_cycle n in
    match
      Local.Runner.run_resilient ~seed ?workers ~plan ~retries ~problem algo g
    with
    | Error e -> fail_error e
    | Ok o ->
      print_endline
        (Fault.Json.to_string (faultsim_local_report ~algo_name ~n o))
  in
  let run_volume ~algo_name ~n ~plan ~retries ~seed ~workers =
    let algo, problem, g =
      match algo_name with
      | "probe-cv-coloring" ->
        ( Volume.Algorithms.cv_coloring,
          Lcl.Zoo_oriented.coloring ~k:3,
          Lcl.Zoo_oriented.mark_orientation_inputs
            (Graph.Builder.oriented_cycle n) )
      | "probe-walker" ->
        ( Volume.Algorithms.two_coloring_walker,
          Lcl.Zoo_oriented.coloring ~k:2,
          Lcl.Zoo_oriented.mark_orientation_inputs
            (Graph.Builder.oriented_cycle (2 * ((n + 1) / 2))) )
      | "probe-const" ->
        ( Volume.Algorithms.constant_choice ~name:"const" 0,
          Lcl.Zoo.free_choice ~delta:2,
          Graph.Builder.cycle n )
      | other ->
        Fmt.epr "unknown probe algorithm %s@." other;
        exit 2
    in
    match
      Volume.Probe.run_resilient ~seed ?workers ~plan ~retries ~problem algo g
    with
    | Error e -> fail_error e
    | Ok o ->
      print_endline
        (Fault.Json.to_string
           (faultsim_volume_report ~algo_name ~n:(Graph.n g) o))
  in
  let run_pipeline ~n ~plan_file ~fault_seed ~crash ~sever ~corrupt ~flip
      ~probe_loss ~retries ~deadline ~seed spec =
    with_problem
      (fun p ->
        match Relim.Pipeline.run_result ?deadline p with
        | Error e -> fail_error e
        | Ok r ->
          let base =
            [
              ("faultsim", Fault.Json.String "pipeline");
              ("problem", Fault.Json.String spec);
              ("verdict",
               Fault.Json.String
                 (faultsim_verdict_string r.Relim.Pipeline.verdict));
              ("iterations",
               Fault.Json.Int (List.length r.Relim.Pipeline.trace));
            ]
          in
          let extra =
            match r.Relim.Pipeline.verdict with
            | Relim.Pipeline.Constant { algo; _ } ->
              (* validate the lifted algorithm resiliently on a random
                 forest under the same fault machinery *)
              let rng = Util.Prng.create ~seed:fault_seed in
              let g =
                Graph.Builder.random_forest rng
                  ~delta:(Lcl.Problem.delta p)
                  ~trees:(max 1 (n / 10))
                  (max 2 n)
              in
              let wrapped =
                {
                  Local.Algorithm.name = "lifted-" ^ Lcl.Problem.name p;
                  radius = (fun ~n:_ -> algo.Relim.Lift.radius);
                  run = algo.Relim.Lift.run;
                }
              in
              with_plan ~plan_file ~fault_seed ~crash ~sever ~corrupt ~flip
                ~probe_loss g (fun plan ->
                  match
                    Local.Runner.run_resilient ~seed ~plan ~retries ~problem:p
                      wrapped g
                  with
                  | Error e -> fail_error e
                  | Ok o ->
                    let rr = o.Local.Runner.report in
                    [
                      ("plan", Fault.Plan.to_json plan);
                      ("validation_n", Fault.Json.Int (Graph.n g));
                      ("ok", Fault.Json.Int rr.Local.Runner.ok_nodes);
                      ("crashed", Fault.Json.Int rr.Local.Runner.crashed_nodes);
                      ("starved", Fault.Json.Int rr.Local.Runner.starved_nodes);
                      ("errored", Fault.Json.Int rr.Local.Runner.errored_nodes);
                      ("healthy_violations",
                       Fault.Json.Int
                         (List.length o.Local.Runner.healthy_violations));
                    ])
            | Relim.Pipeline.Deadline_exceeded _ ->
              (* a checkpoint would embed wall times via Marshal floats;
                 report only its size so output stays byte-stable *)
              let ck = Relim.Pipeline.checkpoint r in
              [ ("checkpoint_bytes", Fault.Json.Int (String.length ck)) ]
            | _ -> []
          in
          print_endline (Fault.Json.to_string (Fault.Json.Obj (base @ extra))))
      spec
  in
  let run n algo_name plan_file fault_seed crash sever corrupt flip probe_loss
      retries deadline seed workers problem_opt metrics () =
    check_n ~cmd:"faultsim" n;
    obs_begin metrics;
    (match problem_opt with
    | Some spec ->
      run_pipeline ~n ~plan_file ~fault_seed ~crash ~sever ~corrupt ~flip
        ~probe_loss ~retries ~deadline ~seed spec
    | None ->
      let volume = String.length algo_name >= 6 && String.sub algo_name 0 6 = "probe-" in
      let g =
        if volume then
          (* mirror run_volume's graph sizes for plan generation *)
          match algo_name with
          | "probe-walker" -> Graph.Builder.cycle (2 * ((n + 1) / 2))
          | _ -> Graph.Builder.cycle n
        else Graph.Builder.oriented_cycle n
      in
      with_plan ~plan_file ~fault_seed ~crash ~sever ~corrupt ~flip
        ~probe_loss g (fun plan ->
          if volume then run_volume ~algo_name ~n ~plan ~retries ~seed ~workers
          else run_local ~algo_name ~n ~plan ~retries ~seed ~workers));
    obs_end metrics
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Run a workload under an explicit fault plan (crash-stop nodes, \
          severed edges, corrupted ids, randomness flips, lost probes) and \
          print a deterministic JSON degradation report; plans replay \
          bit-identically via --plan")
    Term.(
      const run $ n_arg $ algo_arg $ plan_arg $ fault_seed_arg $ crash_arg
      $ sever_arg $ corrupt_arg $ flip_arg $ probe_loss_arg $ retries_arg
      $ deadline_arg $ seed_arg $ workers_arg $ problem_opt_arg $ metrics_arg
      $ const ())

(* -- bench-runner ------------------------------------------------------- *)

(* Timed series over the simulation engine, one JSON object per line —
   the machine-readable counterpart of bench/main.exe's runner-bound
   sections, meant to be collected into BENCH_*.json files across
   revisions. Each workload is measured sequentially (domains=1, no
   memo: the seed path) and then on the configured engine; speedup is
   engine vs. sequential within the same invocation. *)

let bench_json ~workload ~n ~config (o : Local.Runner.outcome) ~speedup =
  let s = o.Local.Runner.stats in
  Printf.printf
    "{\"bench\":\"runner\",\"workload\":\"%s\",\"n\":%d,\"radius\":%d,\
     \"domains\":%d,\"memo\":%b,\"balls\":%d,\"cache_hits\":%d,\
     \"distinct_views\":%d,\"simulate_s\":%.6f,\"verify_s\":%.6f,\
     \"total_s\":%.6f,\"violations\":%d%s}\n"
    workload n o.Local.Runner.radius_used s.Local.Runner.domains_used
    (snd config) s.Local.Runner.balls_extracted s.Local.Runner.cache_hits
    s.Local.Runner.distinct_views s.Local.Runner.simulate_seconds
    s.Local.Runner.verify_seconds s.Local.Runner.total_seconds
    (List.length o.Local.Runner.violations)
    (match speedup with
    | None -> ""
    | Some x -> Printf.sprintf ",\"speedup_vs_seq\":%.2f" x)

let bench_runner_cmd =
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:
            "Engine worker domains; 0 (the default) means min(4, core \
             count) — oversubscribing cores only adds GC barriers.")
  in
  let cycle_n_arg =
    Arg.(value & opt int 16384 & info [ "cycle-n" ] ~doc:"Cycle workload size.")
  in
  let side_arg =
    Arg.(value & opt int 24 & info [ "side" ] ~doc:"Torus side length.")
  in
  let run domains cycle_n side metrics () =
    obs_begin metrics;
    if side < 3 then begin
      Fmt.epr "bench-runner: --side must be >= 3 (got %d)@." side;
      exit 2
    end;
    if cycle_n < 3 then begin
      Fmt.epr "bench-runner: --cycle-n must be >= 3 (got %d)@." cycle_n;
      exit 2
    end;
    let domains =
      if domains >= 1 then domains else min 4 (Util.Parallel.recommended ())
    in
    (* (label, algo, problem, graph, ids, memo-soundness) per workload;
       memo stays off for id-reading algorithms (CV, torus coloring) *)
    let cycle = Graph.Builder.oriented_cycle cycle_n in
    let torus = Grid.Problems.mark_tag_inputs (Grid.Torus.make [| side; side |]) in
    let tg = Grid.Torus.graph torus in
    let tids = (Grid.Torus.prod_ids torus).Grid.Torus.packed in
    let workloads =
      [
        ( "cycle-cv3", cycle_n, Local.Cole_vishkin.three_coloring,
          Lcl.Zoo.coloring ~k:3 ~delta:2, cycle, `Random, false );
        ( "torus-echo", side * side, Grid.Algorithms.dimension_echo,
          Grid.Problems.dimension_echo ~d:2, tg, `Fixed tids, true );
        ( "torus-echo-fooled", side * side,
          Local.Order_invariant.speedup ~n0:16 Grid.Algorithms.dimension_echo,
          Grid.Problems.dimension_echo ~d:2, tg, `Fixed tids, true );
        ( "torus-dim0-2col", side * side,
          Grid.Algorithms.dim0_two_coloring
            ~base:(Grid.Torus.prod_ids torus).Grid.Torus.base ~side,
          Grid.Problems.dim0_two_coloring ~d:2, tg, `Fixed tids, false );
      ]
    in
    List.iter
      (fun (label, n, algo, problem, g, ids, memo_sound) ->
        let seq = Local.Runner.run ~ids ~domains:1 ~memo:false ~problem algo g in
        bench_json ~workload:label ~n ~config:(1, false) seq ~speedup:None;
        let eng =
          Local.Runner.run ~ids ~domains ~memo:memo_sound ~problem algo g
        in
        let speedup =
          seq.Local.Runner.stats.Local.Runner.simulate_seconds
          /. max 1e-9 eng.Local.Runner.stats.Local.Runner.simulate_seconds
        in
        if eng.Local.Runner.labeling <> seq.Local.Runner.labeling then begin
          Fmt.epr "bench-runner: %s engine labeling diverged@." label;
          exit 1
        end;
        bench_json ~workload:label ~n ~config:(domains, memo_sound) eng
          ~speedup:(Some speedup))
      workloads;
    obs_end metrics
  in
  Cmd.v
    (Cmd.info "bench-runner"
       ~doc:
         "Time the simulation engine (sequential vs parallel+memo) and print \
          a JSON line per run")
    Term.(const run $ domains_arg $ cycle_n_arg $ side_arg $ metrics_arg
          $ const ())

(* -- substrate-smoke ---------------------------------------------------- *)

(* Million-node health check of the CSR substrate. Three things only a
   large n exercises: identifier assignment past the old n^3 overflow
   (n >= ~2.1M used to wrap negative), flat-array indexing at offsets
   a boxed representation never reached, and a full classify-verify
   round trip at that scale. CI runs this at the default side under
   LCL_OBS=1; the JSON line is the machine-readable result. *)

let substrate_smoke_cmd =
  let side_arg =
    Arg.(
      value & opt int 1581
      & info [ "side" ]
          ~doc:"Torus side length (default 1581 — just under 2.5M nodes).")
  in
  let run side metrics () =
    obs_begin metrics;
    if side < 3 then begin
      Fmt.epr "substrate-smoke: --side must be >= 3 (got %d)@." side;
      exit 2
    end;
    let t0 = Unix.gettimeofday () in
    let torus =
      Grid.Problems.mark_tag_inputs (Grid.Torus.make [| side; side |])
    in
    let g = Grid.Torus.graph torus in
    let n = Graph.n g in
    let rng = Util.Prng.create ~seed:0xC0FFEE in
    let ids = Graph.Ids.random rng n in
    let ids_ok =
      Array.for_all (fun i -> i > 0) ids && Graph.Ids.all_distinct ids
    in
    if not ids_ok then begin
      Fmt.epr "substrate-smoke: Ids.random broken at n=%d@." n;
      exit 1
    end;
    let pids = Grid.Torus.prod_ids torus in
    let tids = pids.Grid.Torus.packed in
    let echo =
      Local.Runner.run ~ids:(`Fixed tids) ~memo:true
        ~problem:(Grid.Problems.dimension_echo ~d:2)
        Grid.Algorithms.dimension_echo g
    in
    let color =
      Local.Runner.run ~ids:(`Fixed tids)
        ~problem:(Grid.Problems.torus_coloring ~d:2)
        (Grid.Algorithms.torus_coloring ~d:2 ~base:pids.Grid.Torus.base)
        g
    in
    let ev = List.length echo.Local.Runner.violations in
    let cv = List.length color.Local.Runner.violations in
    let es = echo.Local.Runner.stats in
    Printf.printf
      "{\"bench\":\"substrate-smoke\",\"n\":%d,\"ids_ok\":%b,\
       \"echo_violations\":%d,\"echo_cache_hits\":%d,\
       \"echo_distinct_views\":%d,\"coloring_violations\":%d,\
       \"elapsed_s\":%.2f}\n"
      n ids_ok ev es.Local.Runner.cache_hits es.Local.Runner.distinct_views cv
      (Unix.gettimeofday () -. t0);
    obs_end metrics;
    if ev <> 0 || cv <> 0 then begin
      Fmt.epr "substrate-smoke: verification failed (echo %d, coloring %d)@."
        ev cv;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "substrate-smoke"
       ~doc:
         "Million-node CSR health check: identifier overflow regression plus \
          a full torus classification round trip")
    Term.(const run $ side_arg $ metrics_arg $ const ())

(* -- serve / client ------------------------------------------------------ *)

(* Daemon-mode signal hygiene:
   - SIGPIPE ignored: a client that disconnects mid-response must
     surface as EPIPE on the write (handled per connection), not kill
     the daemon;
   - SIGCHLD reaps: cluster worker processes are normally reaped
     synchronously by [Util.Cluster.map_ranges], but a worker that
     dies between dispatch cycles must not linger as a zombie
     ([map_ranges] tolerates the resulting ECHILD);
   - SIGINT/SIGTERM request a clean stop: the select loop notices the
     flag within one poll interval and exits through the path that
     flushes and closes the persistent cache. *)
let install_daemon_signals () =
  let stop = ref false in
  if Sys.unix then begin
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let rec reap_all () =
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | 0, _ -> ()
      | _ -> reap_all ()
      | exception Unix.Unix_error ((Unix.ECHILD | Unix.EINTR), _, _) -> ()
    in
    Sys.set_signal Sys.sigchld (Sys.Signal_handle (fun _ -> reap_all ()));
    let request_stop _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop)
  end;
  stop

let socket_arg =
  Arg.(
    value & opt string "lcl_serve.sock"
    & info [ "socket" ] ~doc:"Unix-domain socket path.")

let serve_cmd =
  let cache_arg =
    Arg.(
      value & opt string "lcl_serve.cache"
      & info [ "cache" ]
          ~doc:"Persistent classification cache file (created if absent).")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt int Serve.Daemon.default_config.Serve.Daemon.max_pending
      & info [ "max-pending" ]
          ~doc:
            "Engine-level requests admitted per dispatch cycle; the \
             overflow is shed with a typed overloaded answer.")
  in
  let budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "default-budget-ms" ]
          ~doc:
            "Deadline budget for requests that carry none; expiry answers \
             deadline-exceeded instead of hanging.")
  in
  let cluster_timeout_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cluster-timeout-ms" ]
          ~doc:
            "Per-worker drain timeout for every computation: a stalled \
             cluster worker is reaped and its range recomputed in-process \
             (default $(b,\\$LCL_CLUSTER_TIMEOUT_MS)).")
  in
  let run socket cache workers max_pending default_budget_ms
      cluster_timeout_ms () =
    let stop = install_daemon_signals () in
    let config =
      {
        Serve.Daemon.default_config with
        Serve.Daemon.max_pending;
        default_budget_ms;
        cluster_timeout_ms;
      }
    in
    let stats =
      Serve.Daemon.serve ~socket_path:socket ~cache_path:cache ?workers
        ~config
        ~should_stop:(fun () -> !stop)
        ~on_ready:(fun () -> Fmt.pr "serving on %s (cache %s)@." socket cache)
        ()
    in
    Fmt.pr
      "served %d requests (%d cache hits, %d misses, %d connections, \
       %d shed, %d degraded, %d deadline-expired)@."
      stats.Serve.Daemon.served stats.Serve.Daemon.hits
      stats.Serve.Daemon.misses stats.Serve.Daemon.connections
      stats.Serve.Daemon.shed stats.Serve.Daemon.degraded
      stats.Serve.Daemon.deadlines
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve classification, simulation and faultsim requests over a \
          Unix-domain socket, batching each dispatch cycle and answering \
          repeated problems from a persistent on-disk cache")
    Term.(
      const run $ socket_arg $ cache_arg $ workers_arg $ max_pending_arg
      $ budget_arg $ cluster_timeout_arg $ const ())

let client_cmd =
  let verb_arg =
    let doc =
      "Request: ping, zoo, stats, health, shutdown, classify, gap, \
       simulate, faultsim."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"VERB" ~doc)
  in
  let problem_opt_arg =
    let doc = "Problem for classify/gap: a zoo name or a file path." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"PROBLEM" ~doc)
  in
  (* problems travel as text: a zoo name passes through, anything else
     is read here so the daemon never touches client paths *)
  let problem_text spec =
    if List.mem_assoc spec zoo_problems then spec
    else
      match In_channel.with_open_text spec In_channel.input_all with
      | text -> text
      | exception Sys_error m ->
        Fmt.epr "error: %s@." m;
        exit 1
  in
  let need_problem verb = function
    | Some spec -> problem_text spec
    | None ->
      Fmt.epr "%s needs a PROBLEM argument@." verb;
      exit 2
  in
  let run socket verb problem_opt n seed algo iterations labels fault_seed
      crash sever retries budget_ms recv_timeout_s request_retries () =
    let req =
      match verb with
      | "ping" -> Serve.Protocol.Ping
      | "zoo" -> Serve.Protocol.Zoo
      | "stats" -> Serve.Protocol.Stats
      | "health" -> Serve.Protocol.Health
      | "shutdown" -> Serve.Protocol.Shutdown
      | "classify" ->
        Serve.Protocol.Classify { problem = need_problem verb problem_opt }
      | "gap" ->
        Serve.Protocol.Gap
          {
            problem = need_problem verb problem_opt;
            iterations;
            max_labels = labels;
          }
      | "simulate" -> Serve.Protocol.Simulate { algo; n; seed }
      | "faultsim" ->
        Serve.Protocol.Faultsim
          { algo; n; seed; fault_seed; crash; sever; retries }
      | other ->
        Fmt.epr "unknown verb %s@." other;
        exit 2
    in
    let retry =
      Util.Backoff.create ~base_ms:20 ~max_ms:500
        ~max_retries:request_retries ~seed:0xC11E47 ()
    in
    let print_text text =
      print_string text;
      if text <> "" && text.[String.length text - 1] <> '\n' then
        print_newline ()
    in
    match
      Serve.Daemon.request ?budget_ms ?recv_timeout_s:recv_timeout_s ~retry
        ~socket_path:socket req
    with
    | Serve.Protocol.Answer text -> print_text text
    | Serve.Protocol.Degraded { text; reason } ->
      Fmt.epr "warning: degraded answer (%s)@." reason;
      print_text text
    | Serve.Protocol.Failed { code; message } ->
      Fmt.epr "error %s: %s@." code message;
      exit 1
    | Serve.Protocol.Deadline_exceeded { budget_ms } ->
      Fmt.epr "error: deadline exceeded (budget %d ms)@." budget_ms;
      exit 3
    | Serve.Protocol.Overloaded { retry_after_ms } ->
      Fmt.epr "error: daemon overloaded (retry after %d ms)@." retry_after_ms;
      exit 4
  in
  let seed_arg =
    Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"Run seed.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~doc:"Seed for drawing the fault plan.")
  in
  let crash_arg =
    Arg.(value & opt float 0. & info [ "crash" ] ~doc:"Crash fraction.")
  in
  let sever_arg =
    Arg.(value & opt float 0. & info [ "sever" ] ~doc:"Sever fraction.")
  in
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~doc:"Re-attempts.")
  in
  let budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget-ms" ]
          ~doc:
            "Deadline budget carried in the request envelope; expiry \
             answers deadline-exceeded.")
  in
  let recv_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "recv-timeout" ]
          ~doc:"Give up waiting for the answer after this many seconds.")
  in
  let request_retries_arg =
    Arg.(
      value & opt int 0
      & info [ "request-retries" ]
          ~doc:
            "Reconnect-with-backoff budget for transport failures and \
             overload sheds (default 0 = one attempt).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running lcl_tool serve daemon")
    Term.(
      const run $ socket_arg $ verb_arg $ problem_opt_arg $ n_arg $ seed_arg
      $ algo_arg $ iterations_arg $ labels_arg $ fault_seed_arg $ crash_arg
      $ sever_arg $ retries_arg $ budget_arg $ recv_timeout_arg
      $ request_retries_arg $ const ())

(* -- chaos-soak ---------------------------------------------------------- *)

(* Service-level chaos soak: fork a daemon under a seeded
   [Fault.Service] plan, drive a seeded request mix through it with
   the matching client-side faults, and assert the robustness
   contract — every request terminates with a typed outcome, and warm
   answers stay byte-identical to cold ones.

   The report printed on stdout is STABLE: a pure function of
   (seed, requests, plan spec), identical across repeated runs and
   across worker counts. That is what the serve-chaos CI job diffs.
   Worker-count-sensitive outcomes are folded away: a [Degraded]
   answer counts as answered (its text is byte-identical to the
   healthy one — that is the recovery guarantee), and the digest
   hashes answer texts only. Non-stable detail (daemon counters,
   degraded counts) goes to stderr under [--counters]. *)
let chaos_soak_cmd =
  let seed_arg =
    Arg.(value & opt int 0xC405 & info [ "seed" ] ~doc:"Soak seed.")
  in
  let requests_arg =
    Arg.(
      value & opt int 120
      & info [ "requests" ] ~doc:"Engine-level requests to drive.")
  in
  let rate name doc default =
    Arg.(value & opt float default & info [ name ] ~doc)
  in
  let kill_arg = rate "kill" "Kill-worker fault rate." 0.08 in
  let stall_arg = rate "stall" "Stall-worker fault rate." 0.04 in
  let torn_arg = rate "torn" "Torn-frame client fault rate." 0.05 in
  let drop_arg = rate "drop" "Drop-connection client fault rate." 0.05 in
  let cache_corrupt_arg = rate "cache-corrupt" "Cache corruption rate." 0.02 in
  let disk_full_arg = rate "disk-full" "Full-disk (cache write) rate." 0.03 in
  let max_pending_arg =
    Arg.(
      value & opt int 32
      & info [ "max-pending" ] ~doc:"Daemon admission cap for the soak.")
  in
  let cluster_timeout_arg =
    Arg.(
      value & opt int 500
      & info [ "cluster-timeout-ms" ]
          ~doc:"Worker drain timeout (reaps stalled chaos workers).")
  in
  let counters_arg =
    Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:
            "Also print non-stable daemon counters to stderr (these \
             legitimately differ across worker counts).")
  in
  let run socket seed requests kill stall torn drop cache_corrupt disk_full
      workers max_pending cluster_timeout_ms counters () =
    if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let pid = Unix.getpid () in
    let tmp = Filename.get_temp_dir_name () in
    let sock =
      if socket = "lcl_serve.sock" then
        Filename.concat tmp (Printf.sprintf "lcl-soak-%d.sock" pid)
      else socket
    in
    let cachef = Filename.concat tmp (Printf.sprintf "lcl-soak-%d.cache" pid) in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ sock; cachef ];
    let spec =
      Fault.Service.spec ~kill ~stall ~torn ~drop ~cache_corrupt ~disk_full
        ~ranks:(match workers with Some w -> max 1 w | None -> 4)
        ()
    in
    let plan = Fault.Service.generate ~label:"soak" ~seed ~requests spec in
    let config =
      {
        Serve.Daemon.default_config with
        Serve.Daemon.max_pending;
        cluster_timeout_ms = Some cluster_timeout_ms;
        chaos = plan;
      }
    in
    let daemon =
      match Unix.fork () with
      | 0 ->
        (try
           ignore
             (Serve.Daemon.serve ~socket_path:sock ~cache_path:cachef ?workers
                ~config ~poll_interval:0.02 ())
         with _ -> Unix._exit 1);
        Unix._exit 0
      | p -> p
    in
    let rec await tries =
      if Sys.file_exists sock then ()
      else if tries = 0 then begin
        Fmt.epr "chaos-soak: daemon never came up@.";
        exit 1
      end
      else begin
        ignore (Unix.select [] [] [] 0.02);
        await (tries - 1)
      end
    in
    await 250;
    (* seeded request mix: cheap, cache-heavy, with a deliberate
       bad-request leg so the F400 path soaks too *)
    let rng = Util.Prng.create ~seed:(seed lxor 0x50AB) in
    let zoo_names =
      [ "3-coloring"; "mis"; "maximal-matching"; "sinkless-orientation";
        "trivial"; "2-coloring" ]
    in
    let draw_request () =
      let pick l = List.nth l (Util.Prng.int rng (List.length l)) in
      match Util.Prng.int rng 100 with
      | r when r < 30 -> Serve.Protocol.Classify { problem = pick zoo_names }
      | r when r < 45 ->
        Serve.Protocol.Gap
          { problem = pick zoo_names; iterations = 3; max_labels = 64 }
      | r when r < 70 ->
        Serve.Protocol.Simulate
          {
            algo = pick [ "cv-coloring"; "mis"; "matching" ];
            n = 16 + (8 * Util.Prng.int rng 8);
            seed = Util.Prng.int rng 4;
          }
      | r when r < 85 ->
        Serve.Protocol.Faultsim
          {
            algo = "cv-coloring";
            n = 32;
            seed = Util.Prng.int rng 4;
            fault_seed = Util.Prng.int rng 4;
            crash = 0.05;
            sever = 0.05;
            retries = 1;
          }
      | r when r < 95 -> Serve.Protocol.Ping
      | _ -> Serve.Protocol.Simulate { algo = "no-such-algo"; n = 64; seed = 0 }
    in
    let mix = List.init requests (fun _ -> draw_request ()) in
    (* client-side fault injections *)
    let with_raw_socket f =
      match Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | fd ->
        (try
           Unix.connect fd (Unix.ADDR_UNIX sock);
           f fd
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ()
    in
    let send_torn req =
      with_raw_socket (fun fd ->
          let enc = Serve.Protocol.encode_request req in
          let k = min 3 (String.length enc - 1) in
          ignore (Unix.write_substring fd enc 0 k))
    in
    let send_and_drop req =
      with_raw_socket (fun fd ->
          let enc = Serve.Protocol.encode_request req in
          ignore (Unix.write_substring fd enc 0 (String.length enc)))
    in
    (* the soak proper *)
    let answered = ref 0 and failed = ref 0 and deadline = ref 0 in
    let overloaded = ref 0 and aborted = ref 0 and degraded = ref 0 in
    let transport_failures = ref 0 and internal_failures = ref 0 in
    let recorded : (Serve.Protocol.request * string) list ref = ref [] in
    let digest_buf = Buffer.create 4096 in
    List.iteri
      (fun i req ->
        let client_events =
          List.filter Fault.Service.client_side (Fault.Service.at plan i)
        in
        match client_events with
        | Fault.Service.Torn_frame :: _ ->
          send_torn req;
          incr aborted;
          (* let the daemon reap the dead connection before the next
             request so dispatch order stays stable *)
          ignore (Unix.select [] [] [] 0.03)
        | Fault.Service.Drop_connection :: _ ->
          send_and_drop req;
          incr aborted;
          ignore (Unix.select [] [] [] 0.03)
        | _ -> (
          match
            Serve.Daemon.request ~recv_timeout_s:30. ~socket_path:sock req
          with
          | Serve.Protocol.Answer text ->
            incr answered;
            Buffer.add_string digest_buf text;
            recorded := (req, text) :: !recorded
          | Serve.Protocol.Degraded { text; _ } ->
            (* same bytes as the healthy answer: count as answered in
               the stable report, tally separately for --counters *)
            incr answered;
            incr degraded;
            Buffer.add_string digest_buf text;
            recorded := (req, text) :: !recorded
          | Serve.Protocol.Failed { code; message } ->
            incr failed;
            if code = "F401" then begin
              incr transport_failures;
              Fmt.epr "soak request %d: transport failure: %s@." i message
            end
            else if code = "F403" then begin
              incr internal_failures;
              Fmt.epr "soak request %d: internal failure: %s@." i message
            end
          | Serve.Protocol.Deadline_exceeded _ -> incr deadline
          | Serve.Protocol.Overloaded _ -> incr overloaded))
      mix;
    (* overload leg: one atomic batch write twice the admission cap —
       the tail must shed with typed Overloaded answers *)
    let overload_sent = 2 * max_pending in
    let overload_answers =
      Serve.Daemon.request_batch ~recv_timeout_s:30. ~socket_path:sock
        (List.init overload_sent (fun _ -> Serve.Protocol.Ping))
    in
    let overload_ok =
      List.length
        (List.filter
           (function Serve.Protocol.Answer _ -> true | _ -> false)
           overload_answers)
    in
    let overload_shed =
      List.length
        (List.filter
           (function Serve.Protocol.Overloaded _ -> true | _ -> false)
           overload_answers)
    in
    (* warm replay: every recorded answer must come back byte-identical
       (these ordinals are past the plan, so no chaos fires) *)
    let warm_identical =
      List.for_all
        (fun (req, text) ->
          match
            Serve.Daemon.request ~recv_timeout_s:30. ~socket_path:sock req
          with
          | Serve.Protocol.Answer t | Serve.Protocol.Degraded { text = t; _ }
            ->
            t = text
          | _ -> false)
        (List.rev !recorded)
    in
    let health_ok =
      match
        Serve.Daemon.request ~recv_timeout_s:30. ~socket_path:sock
          Serve.Protocol.Health
      with
      | Serve.Protocol.Answer t ->
        let affix = "\"serve\":\"health\"" in
        let rec has i =
          i + String.length affix <= String.length t
          && (String.sub t i (String.length affix) = affix || has (i + 1))
        in
        has 0
      | _ -> false
    in
    if counters then begin
      (match
         Serve.Daemon.request ~recv_timeout_s:30. ~socket_path:sock
           Serve.Protocol.Stats
       with
      | Serve.Protocol.Answer t -> Fmt.epr "daemon %s" t
      | _ -> ());
      Fmt.epr "client: degraded=%d transport=%d internal=%d@." !degraded
        !transport_failures !internal_failures
    end;
    ignore
      (Serve.Daemon.request ~recv_timeout_s:30. ~socket_path:sock
         Serve.Protocol.Shutdown);
    (try ignore (Unix.waitpid [] daemon)
     with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ sock; cachef ];
    (* the stable report: diffed verbatim by the serve-chaos CI job *)
    let plan_counts =
      String.concat ","
        (List.map
           (fun (k, c) -> Printf.sprintf "\"%s\":%d" k c)
           (Fault.Service.counts plan))
    in
    Printf.printf
      "{\"soak\":\"report\",\"seed\":%d,\"requests\":%d,\"plan\":{%s},\
       \"outcomes\":{\"answered\":%d,\"failed\":%d,\"deadline\":%d,\
       \"overloaded\":%d,\"client_aborted\":%d},\
       \"overload\":{\"sent\":%d,\"answered\":%d,\"shed\":%d},\
       \"digest\":\"%s\",\"warm_identical\":%b,\"health_ok\":%b,\
       \"all_typed\":true}\n"
      seed requests plan_counts !answered !failed !deadline !overloaded
      !aborted overload_sent overload_ok overload_shed
      (Digest.to_hex (Digest.string (Buffer.contents digest_buf)))
      warm_identical health_ok;
    if
      !transport_failures > 0 || !internal_failures > 0 || not warm_identical
      || not health_ok
      || overload_ok + overload_shed <> overload_sent
    then begin
      Fmt.epr
        "chaos-soak FAILED: transport=%d internal=%d warm_identical=%b \
         health_ok=%b overload %d+%d/%d@."
        !transport_failures !internal_failures warm_identical health_ok
        overload_ok overload_shed overload_sent;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos-soak"
       ~doc:
         "Soak a forked serve daemon under a seeded service-level fault \
          plan (worker kills and stalls, torn frames, dropped connections, \
          cache corruption, full disk) and assert that every request \
          terminates with a typed outcome and warm answers stay \
          byte-identical; prints a stable, diffable report")
    Term.(
      const run $ socket_arg $ seed_arg $ requests_arg $ kill_arg $ stall_arg
      $ torn_arg $ drop_arg $ cache_corrupt_arg $ disk_full_arg $ workers_arg
      $ max_pending_arg $ cluster_timeout_arg $ counters_arg $ const ())

(* -- fuzz ---------------------------------------------------------------- *)

(* Differential fuzzing: seeded random (problem, graph) cases, each
   executed through every engine configuration by [Fuzz.Oracle], with
   byte-identical observables demanded across all of them. Divergent
   cases are minimized by [Fuzz.Shrink] and emitted as replayable
   [Fuzz.Repro] files.

   The report printed on stdout is STABLE: a pure function of (seed,
   cases), with no wall times and every leg pinned to explicit
   domain/worker counts — identical across repeated runs and across
   LCL_DOMAINS/LCL_WORKERS settings. That is what the fuzz CI job
   diffs. [--budget-s] can truncate the case list early; the two runs
   being diffed must then use the same effective case count (CI runs
   without a budget). *)
let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 0xF022 & info [ "seed" ] ~doc:"Fuzz seed.")
  in
  let cases_arg =
    Arg.(
      value & opt int 50
      & info [ "cases" ] ~doc:"Number of (problem, graph) cases to run.")
  in
  let budget_arg =
    Arg.(
      value & opt float 0.
      & info [ "budget-s" ]
          ~doc:
            "Wall-clock budget in seconds; 0 = unlimited. Exhausting it \
             stops cleanly after the current case (noted on stderr, never \
             in the stable report).")
  in
  let no_serve_arg =
    Arg.(
      value & flag
      & info [ "no-serve" ]
          ~doc:"Skip the forked-daemon leg (matrix legs only).")
  in
  let inject_break_arg =
    Arg.(
      value & opt (some string) None
      & info [ "inject-break" ]
          ~doc:
            "Test-only divergence hook: perturb the named configuration's \
             labeling after it computes, so every case diverges and the \
             shrink/repro/replay machinery is exercised end to end.")
  in
  let repro_dir_arg =
    Arg.(
      value & opt string "fuzz-repros"
      & info [ "repro-dir" ]
          ~doc:"Directory minimized repro files are written to.")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ]
          ~doc:
            "Replay a repro file instead of fuzzing: exit 1 if its \
             divergence reproduces, 0 if it no longer does, 2 if the file \
             is malformed.")
  in
  let case_seed seed index = seed + (1_000_003 * index) in
  let replay_run path =
    match Fuzz.Repro.load ~path with
    | Error m ->
      Fmt.epr "fuzz: bad repro %s: %s@." path m;
      exit 2
    | Ok r -> (
      match Fuzz.Repro.replay r with
      | Error m ->
        Fmt.epr "fuzz: bad repro %s: %s@." path m;
        exit 2
      | Ok true ->
        Printf.printf
          "{\"fuzz\":\"replay\",\"repro\":%S,\"configs\":[\"%s\",\"%s\"],\
           \"reproduces\":true}\n"
          (Filename.basename path) r.Fuzz.Repro.config_a r.Fuzz.Repro.config_b;
        exit 1
      | Ok false ->
        Printf.printf
          "{\"fuzz\":\"replay\",\"repro\":%S,\"configs\":[\"%s\",\"%s\"],\
           \"reproduces\":false}\n"
          (Filename.basename path) r.Fuzz.Repro.config_a r.Fuzz.Repro.config_b)
  in
  let with_daemon no_serve f =
    if no_serve then f None
    else begin
      let pid = Unix.getpid () in
      let tmp = Filename.get_temp_dir_name () in
      let sock = Filename.concat tmp (Printf.sprintf "lcl-fuzz-%d.sock" pid) in
      let cachef =
        Filename.concat tmp (Printf.sprintf "lcl-fuzz-%d.cache" pid)
      in
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; cachef ];
      let daemon =
        match Unix.fork () with
        | 0 ->
          (try
             ignore
               (Serve.Daemon.serve ~socket_path:sock ~cache_path:cachef
                  ~workers:1 ~poll_interval:0.02 ())
           with _ -> Unix._exit 1);
          Unix._exit 0
        | p -> p
      in
      let rec await tries =
        if Sys.file_exists sock then ()
        else if tries = 0 then begin
          Fmt.epr "fuzz: serve daemon never came up@.";
          exit 2
        end
        else begin
          ignore (Unix.select [] [] [] 0.02);
          await (tries - 1)
        end
      in
      await 250;
      Fun.protect
        ~finally:(fun () ->
          ignore
            (Serve.Daemon.request ~recv_timeout_s:30. ~socket_path:sock
               Serve.Protocol.Shutdown);
          (try ignore (Unix.waitpid [] daemon)
           with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ sock; cachef ])
        (fun () -> f (Some sock))
    end
  in
  let max_repros = 5 in
  let run seed cases budget_s no_serve inject_break repro_dir replay () =
    if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    match replay with
    | Some path -> replay_run path
    | None ->
      (match inject_break with
      | Some c when not (List.mem c Fuzz.Oracle.configs) ->
        Fmt.epr "fuzz: --inject-break %s is not one of %s@." c
          (String.concat ", " Fuzz.Oracle.configs);
        exit 2
      | _ -> ());
      with_daemon no_serve (fun serve ->
          let started = Unix.gettimeofday () in
          let digest_buf = Buffer.create 4096 in
          let divergent = ref 0 in
          let repros = ref [] in
          let ran = ref 0 in
          (try
             for index = 0 to cases - 1 do
               if budget_s > 0. && Unix.gettimeofday () -. started > budget_s
               then begin
                 Fmt.epr "fuzz: budget exhausted after %d cases@." !ran;
                 raise Exit
               end;
               let case = Fuzz.Gen.case ~seed ~index in
               let ids_seed = case_seed seed index in
               let result =
                 Fuzz.Oracle.run_case ~seed:ids_seed ?serve
                   ?break_config:inject_break ~case_index:index
                   case.Fuzz.Gen.problem case.Fuzz.Gen.spec
               in
               let line = Fuzz.Oracle.result_to_json result in
               print_endline line;
               Buffer.add_string digest_buf line;
               Buffer.add_char digest_buf '\n';
               if result.Fuzz.Oracle.divergences <> [] then begin
                 incr divergent;
                 (* minimize and persist the first matrix-leg divergence
                    (serve-leg divergences are reported but have no
                    two-config replay) *)
                 match
                   List.find_opt
                     (fun d ->
                       List.mem d.Fuzz.Oracle.config_a Fuzz.Oracle.configs
                       && List.mem d.Fuzz.Oracle.config_b Fuzz.Oracle.configs)
                     result.Fuzz.Oracle.divergences
                 with
                 | Some d when List.length !repros < max_repros ->
                   let m =
                     Fuzz.Shrink.minimize ~seed:ids_seed
                       ?break_config:inject_break
                       ~config_a:d.Fuzz.Oracle.config_a
                       ~config_b:d.Fuzz.Oracle.config_b case.Fuzz.Gen.problem
                       case.Fuzz.Gen.spec
                   in
                   (try Unix.mkdir repro_dir 0o755
                    with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                   let path =
                     Filename.concat repro_dir
                       (Printf.sprintf "case-%d.lclfuzz" index)
                   in
                   Fuzz.Repro.save ~path
                     {
                       Fuzz.Repro.seed = ids_seed;
                       case_index = index;
                       spec = m.Fuzz.Shrink.spec;
                       config_a = d.Fuzz.Oracle.config_a;
                       config_b = d.Fuzz.Oracle.config_b;
                       break_config = inject_break;
                       source = Lcl.Parse.to_string m.Fuzz.Shrink.problem;
                     };
                   repros := path :: !repros;
                   Fmt.epr
                     "fuzz: case %d diverged (%s vs %s); minimized repro \
                      (%d steps) -> %s@."
                     index d.Fuzz.Oracle.config_a d.Fuzz.Oracle.config_b
                     m.Fuzz.Shrink.steps path
                 | _ -> ()
               end;
               incr ran
             done
           with Exit -> ());
          Printf.printf
            "{\"fuzz\":\"report\",\"seed\":%d,\"cases\":%d,\"divergent\":%d,\
             \"configs\":[%s],\"serve\":%b,\"digest\":\"%s\"}\n"
            seed !ran !divergent
            (String.concat ","
               (List.map (Printf.sprintf "\"%s\"") Fuzz.Oracle.configs))
            (serve <> None)
            (Digest.to_hex (Digest.string (Buffer.contents digest_buf)));
          if !divergent > 0 then begin
            Fmt.epr "fuzz FAILED: %d/%d cases divergent, %d repro(s) in %s@."
              !divergent !ran (List.length !repros) repro_dir;
            exit 1
          end)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run seeded random (problem, graph) cases \
          through every engine configuration — sequential, multi-domain, \
          multi-process, memoized re-run, resilient under the empty plan, \
          and a forked serve daemon — and demand byte-identical labelings, \
          violations and classifications; divergences are minimized into \
          replayable repro files and the run exits non-zero")
    Term.(
      const run $ seed_arg $ cases_arg $ budget_arg $ no_serve_arg
      $ inject_break_arg $ repro_dir_arg $ replay_arg $ const ())

let main =
  Cmd.group
    (Cmd.info "lcl_tool" ~version:"1.0"
       ~doc:"LCL landscape toolkit (PODC 2022 reproduction)")
    [ show_cmd; zoo_cmd; classify_cmd; gap_cmd; eliminate_cmd; simulate_cmd;
      volume_cmd; lint_cmd; sanitize_cmd; faultsim_cmd; bench_runner_cmd;
      substrate_smoke_cmd; trace_cmd; serve_cmd; client_cmd; chaos_soak_cmd;
      fuzz_cmd ]

let () = exit (Cmd.eval main)
